//! Instruction supply: a predicted-path fetch unit and a perfect-oracle
//! replay unit.
//!
//! The paper connects stations to "an instruction trace cache via
//! fat-tree networks" (§2) and assumes fetch width scales with issue
//! width; here fetch supplies up to one instruction per freed station
//! per cycle and follows the predicted path until redirected by a
//! misprediction.

use crate::predict::{Predictor, PredictorKind};
use ultrascalar_isa::{Instr, Interp, Program};

/// One fetched instruction.
#[derive(Debug, Clone, Copy)]
pub struct Fetched {
    /// Static index (`program.len()` for the synthetic halt).
    pub pc: usize,
    /// The instruction.
    pub instr: Instr,
    /// The pc fetch continued from (prediction for branches).
    pub predicted_next: usize,
}

/// The fetch unit.
#[derive(Debug, Clone)]
pub enum FetchUnit {
    /// Follow the static program along the predicted path.
    Path {
        /// The program being fetched.
        program: Program,
        /// Next pc to fetch, or `None` after supplying a halt.
        cur_pc: Option<usize>,
        /// The branch predictor consulted at fetch.
        predictor: Predictor,
    },
    /// Replay the architecturally correct path (perfect prediction).
    Replay {
        /// The program the stream was computed from (kept so
        /// [`FetchUnit::reset`] can recognise a same-program rewind and
        /// skip re-running the golden interpreter).
        program: Program,
        /// Pre-computed correct-path fetch stream.
        seq: Vec<Fetched>,
        /// Next position in `seq`.
        pos: usize,
    },
}

impl FetchUnit {
    /// Build a fetch unit for `program` with the given predictor. For
    /// [`PredictorKind::Perfect`] the golden interpreter pre-computes
    /// the correct path (up to `fuel` dynamic instructions).
    pub fn new(program: &Program, kind: PredictorKind, fuel: usize) -> Self {
        match kind {
            PredictorKind::Perfect => {
                let mut interp = Interp::new(program, 1 << 16);
                let (_, trace) = interp.run_traced(fuel);
                let mut seq: Vec<Fetched> = trace
                    .iter()
                    .map(|r| Fetched {
                        pc: r.pc,
                        instr: r.instr,
                        predicted_next: r.next_pc,
                    })
                    .collect();
                // If the program ran off the end (or the trace ended
                // without an explicit halt), append the synthetic halt
                // the Path unit would supply.
                let ends_with_halt = seq.last().is_some_and(|f| matches!(f.instr, Instr::Halt));
                if !ends_with_halt {
                    let pc = seq.last().map_or(0, |f| f.predicted_next);
                    seq.push(Fetched {
                        pc,
                        instr: Instr::Halt,
                        predicted_next: pc,
                    });
                }
                FetchUnit::Replay {
                    program: program.clone(),
                    seq,
                    pos: 0,
                }
            }
            _ => FetchUnit::Path {
                program: program.clone(),
                cur_pc: Some(0),
                predictor: Predictor::new(kind),
            },
        }
    }

    /// Rewind to the start of `program` with the given predictor kind,
    /// reusing retained buffers wherever the shape allows. Equivalent
    /// to `*self = FetchUnit::new(program, kind, fuel)` but
    /// allocation-free when `program` is the one already loaded: a
    /// replay unit rewinds its position instead of re-running the
    /// golden interpreter, and a path unit rewinds its pc and clears
    /// predictor training in place.
    pub fn reset(&mut self, program: &Program, kind: PredictorKind, fuel: usize) {
        match self {
            FetchUnit::Replay {
                program: held, pos, ..
            } if kind == PredictorKind::Perfect && held == program => {
                *pos = 0;
                return;
            }
            FetchUnit::Path {
                program: held,
                cur_pc,
                predictor,
            } if kind != PredictorKind::Perfect && predictor.kind() == kind => {
                if held != program {
                    held.instrs.clone_from(&program.instrs);
                    held.num_regs = program.num_regs;
                    held.init_regs.clone_from(&program.init_regs);
                    held.init_mem.clone_from(&program.init_mem);
                }
                *cur_pc = Some(0);
                predictor.reset();
                return;
            }
            _ => {}
        }
        *self = FetchUnit::new(program, kind, fuel);
    }

    /// Fetch the next instruction along the (predicted) path, or `None`
    /// if fetch has stopped (a halt was supplied).
    #[allow(clippy::should_implement_trait)] // deliberate hardware name
    pub fn next(&mut self) -> Option<Fetched> {
        match self {
            FetchUnit::Replay { seq, pos, .. } => {
                let f = *seq.get(*pos)?;
                *pos += 1;
                Some(f)
            }
            FetchUnit::Path {
                program,
                cur_pc,
                predictor,
            } => {
                let pc = (*cur_pc)?;
                if pc >= program.instrs.len() {
                    // Synthetic halt: falling off the end stops the
                    // machine (matching the golden interpreter).
                    *cur_pc = None;
                    return Some(Fetched {
                        pc,
                        instr: Instr::Halt,
                        predicted_next: pc,
                    });
                }
                let instr = program.instrs[pc];
                let predicted_next = match instr {
                    Instr::Jump { target } => target as usize,
                    Instr::Branch { target, .. } => {
                        if predictor.predict(pc, target as usize) {
                            target as usize
                        } else {
                            pc + 1
                        }
                    }
                    Instr::Halt => pc, // fetch stops
                    _ => pc + 1,
                };
                *cur_pc = if matches!(instr, Instr::Halt) {
                    None
                } else {
                    Some(predicted_next)
                };
                Some(Fetched {
                    pc,
                    instr,
                    predicted_next,
                })
            }
        }
    }

    /// Has fetch run dry (halt supplied / trace exhausted)?
    pub fn exhausted(&self) -> bool {
        match self {
            FetchUnit::Replay { seq, pos, .. } => *pos >= seq.len(),
            FetchUnit::Path { cur_pc, .. } => cur_pc.is_none(),
        }
    }

    /// Redirect to the architecturally correct pc after a misprediction
    /// flush.
    ///
    /// # Panics
    /// Panics on a perfect-replay unit (it can never mispredict).
    pub fn redirect(&mut self, pc: usize) {
        match self {
            FetchUnit::Replay { .. } => {
                panic!("perfect fetch redirected — misprediction under a perfect oracle")
            }
            FetchUnit::Path { cur_pc, .. } => *cur_pc = Some(pc),
        }
    }

    /// Train the predictor on a resolved branch.
    pub fn train(&mut self, pc: usize, taken: bool) {
        if let FetchUnit::Path { predictor, .. } = self {
            predictor.update(pc, taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_isa::workload;
    use ultrascalar_isa::{BranchCond, Reg};

    fn branchy_program() -> Program {
        // 0: beq r0, r0, 3   (always taken)
        // 1: nop
        // 2: nop
        // 3: halt
        Program::new(
            vec![
                Instr::Branch {
                    cond: BranchCond::Eq,
                    rs1: Reg(0),
                    rs2: Reg(0),
                    target: 3,
                },
                Instr::Nop,
                Instr::Nop,
                Instr::Halt,
            ],
            1,
        )
    }

    #[test]
    fn path_fetch_follows_not_taken_prediction() {
        let p = branchy_program();
        let mut f = FetchUnit::new(&p, PredictorKind::NotTaken, 1000);
        let pcs: Vec<usize> = std::iter::from_fn(|| f.next()).map(|x| x.pc).collect();
        // Predicts fall-through: 0, 1, 2, 3(halt) then stops.
        assert_eq!(pcs, vec![0, 1, 2, 3]);
        assert!(f.exhausted());
    }

    #[test]
    fn path_fetch_follows_taken_prediction() {
        let p = branchy_program();
        let mut f = FetchUnit::new(&p, PredictorKind::Taken, 1000);
        let pcs: Vec<usize> = std::iter::from_fn(|| f.next()).map(|x| x.pc).collect();
        assert_eq!(pcs, vec![0, 3]);
    }

    #[test]
    fn perfect_fetch_replays_golden_path() {
        let p = branchy_program();
        let mut f = FetchUnit::new(&p, PredictorKind::Perfect, 1000);
        let pcs: Vec<usize> = std::iter::from_fn(|| f.next()).map(|x| x.pc).collect();
        assert_eq!(pcs, vec![0, 3]);
    }

    #[test]
    fn redirect_resumes_on_correct_path() {
        let p = branchy_program();
        let mut f = FetchUnit::new(&p, PredictorKind::NotTaken, 1000);
        assert_eq!(f.next().unwrap().pc, 0);
        assert_eq!(f.next().unwrap().pc, 1);
        // Branch resolves taken: redirect to 3.
        f.redirect(3);
        assert_eq!(f.next().unwrap().pc, 3);
        assert!(f.next().is_none());
    }

    #[test]
    fn falling_off_end_supplies_synthetic_halt() {
        let p = Program::new(vec![Instr::Nop], 1);
        let mut f = FetchUnit::new(&p, PredictorKind::NotTaken, 1000);
        assert_eq!(f.next().unwrap().pc, 0);
        let halt = f.next().unwrap();
        assert_eq!(halt.pc, 1);
        assert!(matches!(halt.instr, Instr::Halt));
        assert!(f.next().is_none());

        // Perfect replay does the same.
        let mut f = FetchUnit::new(&p, PredictorKind::Perfect, 1000);
        assert_eq!(f.next().unwrap().pc, 0);
        assert!(matches!(f.next().unwrap().instr, Instr::Halt));
        assert!(f.next().is_none());
    }

    #[test]
    fn jump_targets_are_followed_without_prediction() {
        let p = Program::new(vec![Instr::Jump { target: 2 }, Instr::Nop, Instr::Halt], 1);
        let mut f = FetchUnit::new(&p, PredictorKind::NotTaken, 1000);
        let pcs: Vec<usize> = std::iter::from_fn(|| f.next()).map(|x| x.pc).collect();
        assert_eq!(pcs, vec![0, 2]);
    }

    #[test]
    fn perfect_fetch_on_kernels_matches_interp_pc_stream() {
        for (name, p) in workload::standard_suite(1) {
            let mut interp = Interp::new(&p, 1 << 16);
            let (_, trace) = interp.run_traced(1_000_000);
            let mut f = FetchUnit::new(&p, PredictorKind::Perfect, 1_000_000);
            for rec in &trace {
                let got = f.next().expect("fetch supplies whole trace");
                assert_eq!(got.pc, rec.pc, "{name}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "perfect fetch redirected")]
    fn perfect_redirect_panics() {
        let p = branchy_program();
        let mut f = FetchUnit::new(&p, PredictorKind::Perfect, 1000);
        f.redirect(0);
    }
}

/// A simple trace cache over redirect targets (the paper's instruction
/// supply is "an instruction trace cache \[Rotenberg et al.; Yeh et
/// al.\] via fat-tree networks"). Sequential fetch along the predicted
/// path always hits (the trace under construction); a *redirect* to a
/// target whose trace is not cached pays `miss_penalty` cycles before
/// fetch resumes. LRU over `entries` trace heads.
#[derive(Debug, Clone)]
pub struct TraceCache {
    entries: usize,
    penalty: u64,
    lru: std::collections::VecDeque<usize>,
    /// Redirects that hit a cached trace head.
    pub hits: u64,
    /// Redirects that missed and paid the penalty.
    pub misses: u64,
}

impl TraceCache {
    /// Build with `entries` trace heads and `miss_penalty` stall cycles.
    ///
    /// # Panics
    /// Panics if `entries == 0`.
    pub fn new(entries: usize, miss_penalty: u64) -> Self {
        assert!(entries > 0, "trace cache needs entries");
        TraceCache {
            entries,
            penalty: miss_penalty,
            lru: std::collections::VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Rewind to the as-constructed state for a new run: traces
    /// forgotten, counters cleared, retained capacity kept.
    pub fn reset(&mut self) {
        self.lru.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Record a redirect to `pc`; returns the fetch stall in cycles
    /// (0 on a hit).
    pub fn redirect(&mut self, pc: usize) -> u64 {
        if let Some(idx) = self.lru.iter().position(|&p| p == pc) {
            self.lru.remove(idx);
            self.lru.push_front(pc);
            self.hits += 1;
            0
        } else {
            self.lru.push_front(pc);
            self.lru.truncate(self.entries);
            self.misses += 1;
            self.penalty
        }
    }
}

#[cfg(test)]
mod trace_cache_tests {
    use super::*;

    #[test]
    fn first_redirect_misses_repeat_hits() {
        let mut tc = TraceCache::new(4, 3);
        assert_eq!(tc.redirect(10), 3);
        assert_eq!(tc.redirect(10), 0);
        assert_eq!(tc.hits, 1);
        assert_eq!(tc.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut tc = TraceCache::new(2, 5);
        tc.redirect(1);
        tc.redirect(2);
        tc.redirect(3); // evicts 1
        assert_eq!(tc.redirect(2), 0);
        assert_eq!(tc.redirect(1), 5); // was evicted
    }

    #[test]
    fn touch_refreshes_lru_position() {
        let mut tc = TraceCache::new(2, 5);
        tc.redirect(1);
        tc.redirect(2);
        tc.redirect(1); // refresh 1
        tc.redirect(3); // evicts 2
        assert_eq!(tc.redirect(1), 0);
        assert_eq!(tc.redirect(2), 5);
    }

    #[test]
    #[should_panic(expected = "needs entries")]
    fn zero_entries_rejected() {
        let _ = TraceCache::new(0, 1);
    }
}
