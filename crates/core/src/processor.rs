//! The common processor interface and run results.

use crate::stats::ProcStats;
use crate::timing::InstrTiming;
use ultrascalar_isa::Program;

/// The outcome of running a program to completion on a processor model.
///
/// `Default` is the empty (no run yet) state; it exists so callers of
/// [`Processor::run_reusing`] can hold one result buffer and let each
/// run overwrite it in place, reusing the vectors' capacity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunResult {
    /// Did the program's halt commit (vs the cycle budget expiring)?
    pub halted: bool,
    /// Cycles simulated.
    pub cycles: u64,
    /// Committed architectural register file.
    pub regs: Vec<u32>,
    /// Final data-memory contents.
    pub mem: Vec<u32>,
    /// Statistics.
    pub stats: ProcStats,
    /// Per-committed-instruction issue/complete cycles, in program
    /// order (the paper's Figure 3 data).
    pub timings: Vec<InstrTiming>,
}

impl RunResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// A processor model that can run a program to completion.
pub trait Processor {
    /// Short display name ("ultrascalar-i", "hybrid(C=8)", …).
    fn name(&self) -> String;

    /// Run `program` until its halt commits or the cycle budget runs
    /// out.
    fn run(&mut self, program: &Program) -> RunResult;

    /// Run `program`, writing the outcome into `out` in place. The
    /// result is identical to [`Processor::run`] — previous contents of
    /// `out` are fully overwritten — but models that retain working
    /// state (see [`Processor::reset`]) reuse `out`'s buffers instead
    /// of allocating a fresh result, which is what makes a warm
    /// engine's request loop allocation-free. The default delegates to
    /// `run`.
    fn run_reusing(&mut self, program: &Program, out: &mut RunResult) {
        *out = self.run(program);
    }

    /// Drop any working state retained across runs, returning the model
    /// to its freshly-constructed (cold) footprint. Purely a memory
    /// release: results never depend on whether a model is warm or
    /// cold. The default is a no-op for models that retain nothing.
    fn reset(&mut self) {}
}

/// Compare a run result against the golden interpreter's architectural
/// state; returns a human-readable mismatch description if any.
pub fn check_against_golden(
    result: &RunResult,
    program: &Program,
    max_steps: usize,
) -> Result<(), String> {
    let mut interp = ultrascalar_isa::Interp::new(program, result.mem.len());
    let out = interp.run(max_steps);
    if !out.halted() {
        return Err("golden interpreter did not halt within fuel".into());
    }
    if !result.halted {
        return Err("processor did not halt within cycle budget".into());
    }
    if interp.regs != result.regs {
        for (i, (a, b)) in interp.regs.iter().zip(&result.regs).enumerate() {
            if a != b {
                return Err(format!("register r{i}: golden {a}, processor {b}"));
            }
        }
    }
    if result.stats.committed != out.steps() as u64 {
        return Err(format!(
            "committed count: golden {}, processor {}",
            out.steps(),
            result.stats.committed
        ));
    }
    if interp.mem.len() != result.mem.len() {
        return Err(format!(
            "memory sizes differ: golden {}, processor {}",
            interp.mem.len(),
            result.mem.len()
        ));
    }
    for (addr, (a, b)) in interp.mem.iter().zip(&result.mem).enumerate() {
        if a != b {
            return Err(format!("memory[{addr}]: golden {a}, processor {b}"));
        }
    }
    Ok(())
}
