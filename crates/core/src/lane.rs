//! Lane-parallel batch execution: up to 64 independent simulations of
//! the same program advance in lock-step through one engine pass.
//!
//! # The schedule-sharing observation
//!
//! The cycle-accurate engine's *timing* is value-independent except
//! through three channels: branch outcomes (which instructions are
//! fetched), memory addresses (bank conflicts, store→load forwarding),
//! and — under mispredictions — wrong-path execution (wrong-path loads
//! issue real memory requests at value-dependent addresses, and the
//! predictor trains on value-dependent wrong-path branch outcomes). So
//! for a group of runs of the **same program** that (a) take identical
//! branch directions, (b) touch identical memory addresses, and
//! (c) suffer **zero** mispredictions and flushes, the cycle-by-cycle
//! schedule — cycles, stats, per-instruction timings — is *identical
//! across the whole group*, even though every register and memory
//! **value** differs per run.
//!
//! [`LaneBatcher`] exploits exactly that: lane 0 (the *leader*) runs
//! through the real engine once; the other lanes advance through a
//! bit-sliced architectural lock-step pass over the
//! [`ultrascalar_prefix::lanes`] substrate — one [`LaneValue`]
//! (a `SlicedPair<32, 1>`, 32 bit-planes × 64 lanes) per architectural
//! register, one word op advancing all lanes at once. Lanes that stay
//! converged with the leader inherit the leader's timing verbatim and
//! keep their own architectural state from the bit-planes. The default
//! configs' `Perfect` predictor satisfies (c) by construction, so on
//! lockstep-friendly kernels the whole batch costs one engine pass
//! plus one architectural sweep.
//!
//! # Divergence peel and rejoin
//!
//! The moment a lane disagrees with the leader — a branch evaluates
//! differently, or a load/store resolves to a different effective
//! address — it is *peeled*: dropped from the active mask and re-run
//! from its initial state on the retained scalar engine
//! ([`crate::Processor::run_reusing`]), which is trivially
//! byte-identical to a serial run. Peeled lanes rejoin at the batch
//! barrier (the next [`LaneBatcher::run_batch`] call); there is no
//! mid-run re-admission, so a peel costs exactly one serial run and
//! nothing else.
//!
//! # Self-verification
//!
//! The lock-step pass mirrors the golden interpreter's semantics, and
//! lane 0 runs through **both** paths. Before any shared result is
//! handed out, lane 0's lock-step registers, memory, halt flag and
//! step count are compared against the engine's; any mismatch (or a
//! leader run that mispredicted, flushed, or ran out of cycle budget)
//! demotes the whole group to serial scalar runs. Correctness never
//! depends on the lock-step pass being right — only throughput does.
//! Batch-level accounting lives in [`LaneBatchStats`], *outside*
//! [`crate::ProcStats`], so every per-lane result stays bit-for-bit
//! identical to its serial twin (a lane counter inside `ProcStats`
//! would break exactly the differential guarantee this mode is pinned
//! by).

use std::borrow::Borrow;

use crate::config::ProcConfig;
use crate::engine::Ultrascalar;
use crate::processor::{Processor, RunResult};
use ultrascalar_isa::{AluOp, BranchCond, Instr, Program};
use ultrascalar_prefix::lanes::{self, LaneValue, LANES};

/// Maximum lanes per batch: one simulation per bit of the plane word.
pub const MAX_LANES: usize = LANES;

/// Batch-level counters for lane-parallel execution. Kept separate
/// from [`crate::ProcStats`] so per-lane results remain byte-identical
/// to serial runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneBatchStats {
    /// Groups that ran the lock-step pass to completion and shared the
    /// leader's schedule.
    pub batches: u64,
    /// Lanes whose results were delivered by a lock-step pass (leader
    /// included).
    pub lane_runs: u64,
    /// Lanes peeled to the scalar engine after diverging from the
    /// leader (different branch direction or memory address).
    pub peels: u64,
    /// Eligible groups (size ≥ 2) demoted entirely to serial runs:
    /// incompatible programs, a leader run that mispredicted / flushed
    /// / exhausted its cycle budget, or a lock-step self-verification
    /// failure.
    pub fallbacks: u64,
}

/// Retained scratch + counters for lane-parallel batch runs. One
/// instance serves any number of batches over any engine; all working
/// buffers are reused, so a warm batch allocates nothing.
#[derive(Debug, Default)]
pub struct LaneBatcher {
    /// One 64-lane bundle per architectural register.
    regs: Vec<LaneValue>,
    /// Per-lane data memory (entry `l` valid while lane `l` is active).
    mems: Vec<Vec<u32>>,
    stats: LaneBatchStats,
}

/// What the lock-step pass concluded for a compatible group.
struct Lockstep {
    /// Lanes still converged with the leader at halt.
    active: u64,
}

impl LaneBatcher {
    /// A batcher with empty (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Batch-level counters accumulated so far.
    pub fn stats(&self) -> &LaneBatchStats {
        &self.stats
    }

    /// Run `programs[i]` into `out[i]` for every `i`, byte-identically
    /// to calling `engine.run_reusing` on each in turn — but sharing
    /// one engine pass across every lane that stays converged with
    /// lane 0. Programs may be given by reference or behind an `Arc`
    /// (anything that borrows as [`Program`]), so pooled callers like
    /// `usim serve` batch straight from their cache handles.
    ///
    /// # Panics
    /// Panics if `programs` and `out` differ in length, are empty, or
    /// exceed [`MAX_LANES`].
    pub fn run_batch<P: Borrow<Program>>(
        &mut self,
        engine: &mut Ultrascalar,
        programs: &[P],
        out: &mut [RunResult],
    ) {
        assert_eq!(programs.len(), out.len(), "one result slot per lane");
        let n = programs.len();
        assert!((1..=MAX_LANES).contains(&n), "batch size must be in 1..=64");
        if n == 1 {
            engine.run_reusing(programs[0].borrow(), &mut out[0]);
            return;
        }
        let Some(words) = compatible_words(engine.config(), programs) else {
            self.stats.fallbacks += 1;
            run_serial(engine, programs, out);
            return;
        };

        // Leader pass through the real engine.
        engine.run_reusing(programs[0].borrow(), &mut out[0]);
        let (leader, rest) = out.split_first_mut().expect("n >= 2");

        // Schedule-sharing gate: the leader's timing transfers to a
        // converged lane only if no wrong-path work ran (see module
        // docs) and the run actually completed.
        let clean = leader.halted && leader.stats.mispredictions == 0 && leader.stats.flushed == 0;
        if !clean {
            self.stats.fallbacks += 1;
            run_serial(engine, &programs[1..], rest);
            return;
        }

        match self.lockstep(programs, words, leader) {
            Some(pass) if self.verify_leader(programs[0].borrow().num_regs, leader) => {
                self.stats.batches += 1;
                self.stats.lane_runs += pass.active.count_ones() as u64;
                self.stats.peels += (lanes::mask_lo(n) & !pass.active).count_ones() as u64;
                self.assemble(engine, programs, leader, rest, pass.active);
            }
            _ => {
                self.stats.fallbacks += 1;
                run_serial(engine, &programs[1..], rest);
            }
        }
    }

    /// The bit-sliced architectural lock-step pass: a mirror of the
    /// golden interpreter's step semantics over all lanes at once,
    /// peeling lanes that diverge from lane 0. Returns `None` if the
    /// pass disagrees with the leader's halt/step count (which demotes
    /// the group to serial).
    fn lockstep<P: Borrow<Program>>(
        &mut self,
        programs: &[P],
        words: usize,
        leader: &RunResult,
    ) -> Option<Lockstep> {
        let n = programs.len();
        let p0 = programs[0].borrow();
        let num_regs = p0.num_regs;
        let target_steps = leader.stats.committed as usize;

        // Per-register lane bundles from each lane's initial registers.
        self.regs.clear();
        self.regs.resize(num_regs, LaneValue::identity());
        let mut vals = [0u32; LANES];
        for (r, bundle) in self.regs.iter_mut().enumerate() {
            vals = [0u32; LANES];
            for (l, p) in programs.iter().enumerate() {
                vals[l] = p.borrow().init_regs[r];
            }
            *bundle = lanes::deposit(&vals);
        }

        // Per-lane memory images.
        if self.mems.len() < n {
            self.mems.resize_with(n, Vec::new);
        }
        for (l, p) in programs.iter().enumerate() {
            let p = p.borrow();
            let m = &mut self.mems[l];
            m.clear();
            m.resize(words, 0);
            m[..p.init_mem.len()].copy_from_slice(&p.init_mem);
        }

        let instrs = &p0.instrs;
        let mut active = lanes::mask_lo(n);
        let mut pc = 0usize;
        let mut steps = 0usize;
        let mut halted = false;
        while !halted {
            let Some(&instr) = instrs.get(pc) else {
                // Fell off the end: implicit halt, no commit.
                break;
            };
            if steps == target_steps {
                // About to outrun the leader's committed count.
                return None;
            }
            let mut next_pc = pc + 1;
            match instr {
                Instr::Nop => {}
                Instr::Halt => halted = true,
                Instr::Jump { target } => next_pc = target as usize,
                Instr::LoadImm { rd, imm } => {
                    self.regs[rd.index()] = lanes::broadcast(imm as u32);
                }
                Instr::Alu { op, rd, rs1, rs2 } => {
                    let v = eval_alu(op, &self.regs[rs1.index()], &self.regs[rs2.index()], active);
                    self.regs[rd.index()] = v;
                }
                Instr::AluImm { op, rd, rs1, imm } => {
                    let v = eval_alu_imm(op, &self.regs[rs1.index()], imm as u32);
                    self.regs[rd.index()] = v;
                }
                Instr::Load { rd, base, offset } => {
                    lanes::extract(&self.regs[base.index()], &mut vals);
                    let addr = peel_divergent_addrs(&vals, offset, words, &mut active);
                    let mut loaded = [0u32; LANES];
                    let mut act = active;
                    while act != 0 {
                        let l = act.trailing_zeros() as usize;
                        act &= act - 1;
                        loaded[l] = self.mems[l][addr];
                    }
                    self.regs[rd.index()] = lanes::deposit(&loaded);
                }
                Instr::Store { src, base, offset } => {
                    lanes::extract(&self.regs[base.index()], &mut vals);
                    let addr = peel_divergent_addrs(&vals, offset, words, &mut active);
                    lanes::extract(&self.regs[src.index()], &mut vals);
                    let mut act = active;
                    while act != 0 {
                        let l = act.trailing_zeros() as usize;
                        act &= act - 1;
                        self.mems[l][addr] = vals[l];
                    }
                }
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let m = branch_mask(cond, &self.regs[rs1.index()], &self.regs[rs2.index()]);
                    let taken = m & 1 == 1; // leader's direction
                    let follow = if taken { m } else { !m };
                    active &= follow; // peel lanes that went the other way
                    if taken {
                        next_pc = target as usize;
                    }
                }
            }
            if next_pc >= instrs.len() {
                halted = true;
            }
            pc = next_pc;
            steps += 1;
        }
        if steps != target_steps {
            return None;
        }
        Some(Lockstep { active })
    }

    /// Cross-check lane 0's lock-step state against the engine's
    /// result. Lane 0 ran both paths; if they disagree, the lock-step
    /// pass is wrong and the group must not share its results.
    fn verify_leader(&self, num_regs: usize, leader: &RunResult) -> bool {
        if self.mems[0] != leader.mem {
            return false;
        }
        let mut vals = [0u32; LANES];
        for r in 0..num_regs {
            lanes::extract(&self.regs[r], &mut vals);
            if vals[0] != leader.regs[r] {
                return false;
            }
        }
        true
    }

    /// Hand out results: converged lanes inherit the leader's schedule
    /// (cycles, stats, timings) with their own registers and memory
    /// from the lane substrate; peeled lanes re-run serially.
    fn assemble<P: Borrow<Program>>(
        &mut self,
        engine: &mut Ultrascalar,
        programs: &[P],
        leader: &RunResult,
        rest: &mut [RunResult],
        active: u64,
    ) {
        let num_regs = programs[0].borrow().num_regs;
        let mut vals = [0u32; LANES];
        // Registers first, one extraction per architectural register
        // covering every converged lane at once.
        for (i, slot) in rest.iter_mut().enumerate() {
            if active >> (i + 1) & 1 == 1 {
                slot.regs.clear();
                slot.regs.resize(num_regs, 0);
            }
        }
        for r in 0..num_regs {
            lanes::extract(&self.regs[r], &mut vals);
            for (i, slot) in rest.iter_mut().enumerate() {
                if active >> (i + 1) & 1 == 1 {
                    slot.regs[r] = vals[i + 1];
                }
            }
        }
        for (i, slot) in rest.iter_mut().enumerate() {
            let l = i + 1;
            if active >> l & 1 == 1 {
                slot.halted = true;
                slot.cycles = leader.cycles;
                slot.stats.clone_from(&leader.stats);
                slot.timings.clone_from(&leader.timings);
                std::mem::swap(&mut slot.mem, &mut self.mems[l]);
            } else {
                engine.run_reusing(programs[l].borrow(), slot);
            }
        }
    }
}

/// Serial scalar runs for a whole group (the always-correct path).
fn run_serial<P: Borrow<Program>>(engine: &mut Ultrascalar, programs: &[P], out: &mut [RunResult]) {
    for (p, o) in programs.iter().zip(out.iter_mut()) {
        engine.run_reusing(p.borrow(), o);
    }
}

/// The effective memory size every lane must agree on (the engine and
/// interpreter both size memory as
/// `max(cfg.mem.words, init_mem.len(), 1)`), or `None` if the group is
/// not lane-batchable: instruction streams, register-file sizes, or
/// effective memory sizes differ.
fn compatible_words<P: Borrow<Program>>(cfg: &ProcConfig, programs: &[P]) -> Option<usize> {
    let p0 = programs[0].borrow();
    let words = cfg.mem.words.max(p0.init_mem.len()).max(1);
    for p in &programs[1..] {
        let p = p.borrow();
        if p.instrs != p0.instrs
            || p.num_regs != p0.num_regs
            || cfg.mem.words.max(p.init_mem.len()).max(1) != words
        {
            return None;
        }
    }
    Some(words)
}

/// Per-lane effective addresses from extracted base values; peels
/// (clears from `active`) every non-leader lane whose address differs
/// from lane 0's, and returns the leader's address.
#[inline]
fn peel_divergent_addrs(
    bases: &[u32; LANES],
    offset: i32,
    words: usize,
    active: &mut u64,
) -> usize {
    let addr0 = (bases[0].wrapping_add(offset as u32) as usize) % words;
    let mut act = *active & !1;
    while act != 0 {
        let l = act.trailing_zeros() as usize;
        act &= act - 1;
        if (bases[l].wrapping_add(offset as u32) as usize) % words != addr0 {
            *active &= !(1u64 << l);
        }
    }
    addr0
}

/// One ALU op over all lanes. Shifts by a lane-uniform amount (over
/// the active lanes) relabel planes; everything without a cheap plane
/// form goes through the transpose escape hatch.
fn eval_alu(op: AluOp, a: &LaneValue, b: &LaneValue, active: u64) -> LaneValue {
    match op {
        AluOp::Add => lanes::add(a, b),
        AluOp::Sub => lanes::sub(a, b),
        AluOp::And => lanes::and(a, b),
        AluOp::Or => lanes::or(a, b),
        AluOp::Xor => lanes::xor(a, b),
        AluOp::Slt => lanes::mask_value(lanes::lt_mask(a, b)),
        AluOp::Sltu => lanes::mask_value(lanes::ltu_mask(a, b)),
        AluOp::Sll | AluOp::Srl | AluOp::Sra => match lanes::uniform_value(b, active) {
            Some(sh) => eval_shift(op, a, sh),
            None => lanes::map2(a, b, |x, y| op.apply(x, y)),
        },
        AluOp::Mul | AluOp::Div | AluOp::Rem => lanes::map2(a, b, |x, y| op.apply(x, y)),
    }
}

/// The register–immediate forms: the second operand is lane-uniform by
/// construction, so shifts always take the plane-relabelling path.
fn eval_alu_imm(op: AluOp, a: &LaneValue, imm: u32) -> LaneValue {
    match op {
        AluOp::Sll | AluOp::Srl | AluOp::Sra => eval_shift(op, a, imm),
        _ => eval_alu(op, a, &lanes::broadcast(imm), u64::MAX),
    }
}

/// Lane-uniform shift (amount masked mod 32, as `AluOp::apply` does).
#[inline]
fn eval_shift(op: AluOp, a: &LaneValue, amount: u32) -> LaneValue {
    let sh = amount & 31;
    match op {
        AluOp::Sll => lanes::sll_uniform(a, sh),
        AluOp::Srl => lanes::srl_uniform(a, sh),
        AluOp::Sra => lanes::sra_uniform(a, sh),
        _ => unreachable!("eval_shift is only called for shift ops"),
    }
}

/// Per-lane branch condition mask (bit `l` set iff lane `l` takes).
fn branch_mask(cond: BranchCond, a: &LaneValue, b: &LaneValue) -> u64 {
    match cond {
        BranchCond::Eq => lanes::eq_mask(a, b),
        BranchCond::Ne => !lanes::eq_mask(a, b),
        BranchCond::Lt => lanes::lt_mask(a, b),
        BranchCond::Ge => !lanes::lt_mask(a, b),
        BranchCond::Ltu => lanes::ltu_mask(a, b),
        BranchCond::Geu => !lanes::ltu_mask(a, b),
    }
}

/// The ISSUE-facing convenience wrapper: an engine plus its lane
/// batcher as one unit, for callers that own their engine (benches,
/// tests). `usim serve` composes [`LaneBatcher`] with pooled engines
/// directly instead.
#[derive(Debug)]
pub struct LaneBatchEngine {
    engine: Ultrascalar,
    batcher: LaneBatcher,
}

impl LaneBatchEngine {
    /// An engine + batcher for the given configuration.
    pub fn new(cfg: ProcConfig) -> Self {
        LaneBatchEngine {
            engine: Ultrascalar::new(cfg),
            batcher: LaneBatcher::new(),
        }
    }

    /// The wrapped engine's configuration.
    pub fn config(&self) -> &ProcConfig {
        self.engine.config()
    }

    /// Batch-level lane counters.
    pub fn lane_stats(&self) -> &LaneBatchStats {
        self.batcher.stats()
    }

    /// Run a batch; see [`LaneBatcher::run_batch`].
    pub fn run_batch<P: Borrow<Program>>(&mut self, programs: &[P], out: &mut [RunResult]) {
        self.batcher.run_batch(&mut self.engine, programs, out);
    }

    /// Direct scalar access to the wrapped engine.
    pub fn engine_mut(&mut self) -> &mut Ultrascalar {
        &mut self.engine
    }
}
