//! Lane-parallel batch execution: up to 64 independent simulations of
//! the same program advance in lock-step through one engine pass.
//!
//! # The schedule-sharing observation
//!
//! The cycle-accurate engine's *timing* is value-independent except
//! through three channels: branch outcomes (which instructions are
//! fetched), memory addresses (bank conflicts, store→load forwarding),
//! and — under mispredictions — wrong-path execution (wrong-path loads
//! issue real memory requests at value-dependent addresses, and the
//! predictor trains on value-dependent wrong-path branch outcomes). So
//! for a group of runs of the **same program** whose value-dependent
//! control facts all agree — every committed branch direction, every
//! effective address, every *resolved* wrong-path branch direction and
//! every wrong-path effective address — the cycle-by-cycle schedule —
//! cycles, stats, per-instruction timings — is *identical across the
//! whole group*, even though every register and memory **value**
//! differs per run.
//!
//! [`LaneBatcher`] exploits exactly that: lane 0 (the *leader*) runs
//! through the real engine once; the other lanes advance through a
//! bit-sliced architectural lock-step pass over the
//! [`ultrascalar_prefix::lanes`] substrate — one [`LaneValue`]
//! (a `SlicedPair<32, 1>`, 32 bit-planes × 64 lanes) per architectural
//! register, one word op advancing all lanes at once. Lanes that stay
//! converged with the leader inherit the leader's timing verbatim and
//! keep their own architectural state from the bit-planes.
//!
//! # Epoch-segmented schedule sharing
//!
//! Mispredictions no longer demote the group. The leader's run is
//! split at its mispredict/flush boundaries into *clean epochs*:
//! within an epoch the committed path carries no wrong-path work, so
//! the lock-step pass advances exactly as before. At each boundary the
//! engine's [`crate::engine::ReplayLog`] supplies the squashed
//! wrong-path suffix — every flushed station with the two
//! value-dependent facts that shaped the schedule: the branch
//! direction *iff* it resolved early enough to train the predictor,
//! and the effective address *iff* the memory operation computed one.
//! The batcher replays that segment sequentially for all lanes at once
//! (a generation-stamped register overlay plus a wrong-path store
//! overlay, both reused scratch) and peels every lane whose resolved
//! direction or address disagrees with the leader's
//! ([`LaneBatchStats::replay_peels`]). Squashed entries that resolved
//! neither fact provably left no timing trace — their consumers never
//! issued — so their values are don't-cares.
//!
//! Wrong paths speculate too: a wrong-path branch that resolves
//! against its own prediction flushes its juniors and redirects
//! wrong-path fetch, recording a *nested* flush event whose flusher
//! never commits. A committed-sequence gap is therefore tiled by the
//! union of one *outer* event (the committed flusher's) and any nested
//! events recorded — necessarily earlier — inside it. The replay
//! merges them in sequence order and scopes each event's register and
//! store writes to its own seq range with an undo journal: the engine
//! refetched from a nested flush point, so entries past an event's
//! last seq never saw that event's values. Ranges of distinct events
//! are disjoint, so the scopes are properly nested and LIFO undo is
//! exact.
//!
//! **Per-lane predictor state reduces to direction checks.** The
//! predictor trains on exactly two kinds of outcomes: committed branch
//! directions (checked lane-against-leader by the lock-step pass) and
//! wrong-path directions that resolved before their flush (checked by
//! the segment replay). A lane that matches the leader on *every*
//! checked direction feeds its predictor the identical training
//! sequence, so its bimodal tables evolve identically by induction —
//! no per-lane counter tables need materialising, which keeps the
//! whole boundary check allocation-free.
//!
//! # Divergence peel and rejoin
//!
//! The moment a lane disagrees with the leader — a branch evaluates
//! differently, or a load/store resolves to a different effective
//! address, on either the committed path or a replayed wrong-path
//! segment — it is *peeled*: dropped from the active mask and re-run
//! from its initial state on the retained scalar engine
//! ([`crate::Processor::run_reusing`]), which is trivially
//! byte-identical to a serial run. Peeled lanes rejoin at the batch
//! barrier (the next [`LaneBatcher::run_batch`] call); there is no
//! mid-run re-admission, so a peel costs exactly one serial run and
//! nothing else.
//!
//! # Self-verification
//!
//! The lock-step pass mirrors the golden interpreter's semantics, and
//! lane 0 runs through **both** paths. The pass is pinned against the
//! engine at every step (committed pc sequence), at every boundary
//! (lane 0's replayed directions and addresses must equal the logged
//! ones, and the flush events must tile the committed-sequence gaps
//! exactly), and at the end (lane 0's lock-step registers, memory,
//! halt flag and step count against the engine's). Any mismatch — or
//! a leader run that ran out of cycle budget, or flush structure the
//! replay cannot account for (nested flushes whose flusher never
//! commits, wrong-path work past the end of the program) — demotes
//! the whole group to serial scalar runs, per-cause counted in
//! [`LaneBatchStats`]. Correctness never depends on the lock-step
//! pass being right — only throughput does. Batch-level accounting
//! lives in [`LaneBatchStats`], *outside* [`crate::ProcStats`], so
//! every per-lane result stays bit-for-bit identical to its serial
//! twin (a lane counter inside `ProcStats` would break exactly the
//! differential guarantee this mode is pinned by).

use std::borrow::Borrow;

use crate::config::ProcConfig;
use crate::engine::{FlushedEntry, ReplayLog, Ultrascalar};
use crate::processor::{Processor, RunResult};
use ultrascalar_isa::{AluOp, BranchCond, Instr, Program};
use ultrascalar_prefix::lanes::{self, LaneValue, LANES};

/// Maximum lanes per batch: one simulation per bit of the plane word.
pub const MAX_LANES: usize = LANES;

/// Batch-level counters for lane-parallel execution. Kept separate
/// from [`crate::ProcStats`] so per-lane results remain byte-identical
/// to serial runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneBatchStats {
    /// Groups that ran the lock-step pass to completion and shared the
    /// leader's schedule.
    pub batches: u64,
    /// Lanes whose results were delivered by a lock-step pass (leader
    /// included).
    pub lane_runs: u64,
    /// Lanes peeled to the scalar engine after diverging from the
    /// leader (different branch direction or memory address, on the
    /// committed path or during a wrong-path segment replay).
    pub peels: u64,
    /// The subset of [`peels`](Self::peels) that diverged during a
    /// wrong-path segment replay at an epoch boundary (resolved branch
    /// direction or effective address differed from the leader's).
    pub replay_peels: u64,
    /// Clean epochs executed by shared batches: one more than the
    /// number of flush boundaries each, so a mispredict-free shared
    /// batch contributes exactly 1.
    pub epochs: u64,
    /// Eligible groups (size ≥ 2) demoted entirely to serial runs —
    /// the sum of the per-cause counters below.
    pub fallbacks: u64,
    /// Demotions: programs not lane-batchable (instruction streams,
    /// register-file sizes, or effective memory sizes differ).
    pub fallback_incompatible: u64,
    /// Demotions: the leader run never halted (cycle budget).
    pub fallback_leader: u64,
    /// Demotions: the lock-step walk could not account for the
    /// leader's schedule — committed-path or flush-boundary structure
    /// the replay does not model (e.g. flush events that do not tile
    /// their committed-sequence gap), or a lane-0 replay fact
    /// disagreeing with the engine's log.
    pub fallback_structure: u64,
    /// Demotions: lane 0's final lock-step state failed verification
    /// against the engine's result.
    pub fallback_verify: u64,
}

impl LaneBatchStats {
    /// Counter-wise accumulate `other` into `self`, for rolling the
    /// counters of several batchers (or several snapshots' deltas) into
    /// one aggregate.
    pub fn merge(&mut self, other: &Self) {
        self.batches += other.batches;
        self.lane_runs += other.lane_runs;
        self.peels += other.peels;
        self.replay_peels += other.replay_peels;
        self.epochs += other.epochs;
        self.fallbacks += other.fallbacks;
        self.fallback_incompatible += other.fallback_incompatible;
        self.fallback_leader += other.fallback_leader;
        self.fallback_structure += other.fallback_structure;
        self.fallback_verify += other.fallback_verify;
    }

    /// Counter-wise difference `self - earlier`, for reporting what one
    /// span of batches contributed between two cumulative snapshots of
    /// the same batcher. Saturating, so a mismatched snapshot shows 0
    /// instead of wrapping.
    pub fn delta_since(&self, earlier: &Self) -> Self {
        LaneBatchStats {
            batches: self.batches.saturating_sub(earlier.batches),
            lane_runs: self.lane_runs.saturating_sub(earlier.lane_runs),
            peels: self.peels.saturating_sub(earlier.peels),
            replay_peels: self.replay_peels.saturating_sub(earlier.replay_peels),
            epochs: self.epochs.saturating_sub(earlier.epochs),
            fallbacks: self.fallbacks.saturating_sub(earlier.fallbacks),
            fallback_incompatible: self
                .fallback_incompatible
                .saturating_sub(earlier.fallback_incompatible),
            fallback_leader: self.fallback_leader.saturating_sub(earlier.fallback_leader),
            fallback_structure: self
                .fallback_structure
                .saturating_sub(earlier.fallback_structure),
            fallback_verify: self.fallback_verify.saturating_sub(earlier.fallback_verify),
        }
    }
}

/// Retained scratch + counters for lane-parallel batch runs. One
/// instance serves any number of batches over any engine; all working
/// buffers are reused, so a warm batch allocates nothing.
#[derive(Debug, Default)]
pub struct LaneBatcher {
    /// One 64-lane bundle per architectural register.
    regs: Vec<LaneValue>,
    /// Per-lane data memory (entry `l` valid while lane `l` is active).
    mems: Vec<Vec<u32>>,
    /// Wrong-path register overlay for segment replay: per-register
    /// per-lane scalar values, generation-stamped so starting a new
    /// segment is one counter bump instead of a clear.
    wp_val: Vec<[u32; LANES]>,
    /// Generation stamp per overlay register (`== wp_gen_cur` ⇒ live).
    wp_gen: Vec<u32>,
    /// Current overlay generation (bumped per replayed segment).
    wp_gen_cur: u32,
    /// Wrong-path store overlay for the segment being replayed:
    /// (leader address, per-lane values), youngest last.
    wp_stores: Vec<(usize, [u32; LANES])>,
    /// Per-gap cursor into each consumed flush event's entries (merge
    /// state for the seq-ordered replay).
    gap_cursors: Vec<usize>,
    /// Open event scopes during a gap replay: (last seq of the event's
    /// range, register-journal mark, store-overlay mark). Popping a
    /// scope undoes the event's writes — the engine refetched from the
    /// nested flush point, so younger entries never saw them.
    gap_scopes: Vec<(u64, usize, usize)>,
    /// Undo journal for overlay register writes inside event scopes:
    /// (register, previous generation stamp, previous lane values).
    journal: Vec<(usize, u32, [u32; LANES])>,
    stats: LaneBatchStats,
}

/// What the lock-step pass concluded for a compatible group.
struct Lockstep {
    /// Lanes still converged with the leader at halt.
    active: u64,
    /// Lanes peeled during wrong-path segment replay (⊆ the peeled
    /// set).
    replay_peeled: u64,
    /// Clean epochs walked: flush boundaries matched, plus one.
    epochs: u64,
}

impl LaneBatcher {
    /// A batcher with empty (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Batch-level counters accumulated so far.
    pub fn stats(&self) -> &LaneBatchStats {
        &self.stats
    }

    /// Run `programs[i]` into `out[i]` for every `i`, byte-identically
    /// to calling `engine.run_reusing` on each in turn — but sharing
    /// one engine pass across every lane that stays converged with
    /// lane 0. Programs may be given by reference or behind an `Arc`
    /// (anything that borrows as [`Program`]), so pooled callers like
    /// `usim serve` batch straight from their cache handles.
    ///
    /// # Panics
    /// Panics if `programs` and `out` differ in length, are empty, or
    /// exceed [`MAX_LANES`].
    pub fn run_batch<P: Borrow<Program>>(
        &mut self,
        engine: &mut Ultrascalar,
        programs: &[P],
        out: &mut [RunResult],
    ) {
        assert_eq!(programs.len(), out.len(), "one result slot per lane");
        let n = programs.len();
        assert!((1..=MAX_LANES).contains(&n), "batch size must be in 1..=64");
        if n == 1 {
            engine.run_reusing(programs[0].borrow(), &mut out[0]);
            return;
        }
        let Some(words) = compatible_words(engine.config(), programs) else {
            self.stats.fallbacks += 1;
            self.stats.fallback_incompatible += 1;
            run_serial(engine, programs, out);
            return;
        };

        // Leader pass through the real engine.
        engine.run_reusing(programs[0].borrow(), &mut out[0]);
        let (leader, rest) = out.split_first_mut().expect("n >= 2");

        // Schedule-sharing gate: mispredictions and flushes are now
        // handled epoch-by-epoch (see module docs); only a leader that
        // ran out of cycle budget demotes the group outright.
        if !leader.halted {
            self.stats.fallbacks += 1;
            self.stats.fallback_leader += 1;
            run_serial(engine, &programs[1..], rest);
            return;
        }

        let pass = self.lockstep(programs, words, leader, engine.replay_log());
        match pass {
            Some(pass) if self.verify_leader(programs[0].borrow().num_regs, leader) => {
                self.stats.batches += 1;
                self.stats.epochs += pass.epochs;
                self.stats.lane_runs += pass.active.count_ones() as u64;
                self.stats.peels += (lanes::mask_lo(n) & !pass.active).count_ones() as u64;
                self.stats.replay_peels += pass.replay_peeled.count_ones() as u64;
                self.assemble(engine, programs, leader, rest, pass.active);
            }
            Some(_) => {
                self.stats.fallbacks += 1;
                self.stats.fallback_verify += 1;
                run_serial(engine, &programs[1..], rest);
            }
            None => {
                self.stats.fallbacks += 1;
                self.stats.fallback_structure += 1;
                run_serial(engine, &programs[1..], rest);
            }
        }
    }

    /// The bit-sliced architectural lock-step pass: a mirror of the
    /// golden interpreter's step semantics over all lanes at once,
    /// peeling lanes that diverge from lane 0 — aligned step-for-step
    /// with the leader's committed timings, with every seq gap matched
    /// against a logged flush event and replayed (see module docs).
    /// Returns `None` if the walk disagrees with the leader's schedule
    /// anywhere (which demotes the group to serial).
    fn lockstep<P: Borrow<Program>>(
        &mut self,
        programs: &[P],
        words: usize,
        leader: &RunResult,
        replay: &ReplayLog,
    ) -> Option<Lockstep> {
        let n = programs.len();
        let p0 = programs[0].borrow();
        let num_regs = p0.num_regs;

        // Per-register lane bundles from each lane's initial registers.
        self.regs.clear();
        self.regs.resize(num_regs, LaneValue::identity());
        let mut vals = [0u32; LANES];
        for (r, bundle) in self.regs.iter_mut().enumerate() {
            vals = [0u32; LANES];
            for (l, p) in programs.iter().enumerate() {
                vals[l] = p.borrow().init_regs[r];
            }
            *bundle = lanes::deposit(&vals);
        }

        // Per-lane memory images.
        if self.mems.len() < n {
            self.mems.resize_with(n, Vec::new);
        }
        for (l, p) in programs.iter().enumerate() {
            let p = p.borrow();
            let m = &mut self.mems[l];
            m.clear();
            m.resize(words, 0);
            m[..p.init_mem.len()].copy_from_slice(&p.init_mem);
        }

        // Wrong-path overlay scratch for this batch's register file.
        self.wp_val.clear();
        self.wp_val.resize(num_regs, [0u32; LANES]);
        self.wp_gen.clear();
        self.wp_gen.resize(num_regs, 0);
        self.wp_gen_cur = 0;

        let instrs = &p0.instrs;
        let timings = &leader.timings;
        let mut active = lanes::mask_lo(n);
        let mut replay_peeled = 0u64;
        let mut pc = 0usize;
        let mut k = 0usize; // index into the leader's committed timings
        let mut ev = 0usize; // index into the leader's flush events
        let mut gaps = 0u64; // flush boundaries walked
        let mut halted = false;
        while !halted {
            let Some(&instr) = instrs.get(pc) else {
                // Fell off the end: implicit halt, no commit.
                break;
            };
            // The walk must track the leader's committed sequence
            // exactly; outrunning it or visiting a different pc means
            // the pass has diverged from the engine.
            let tk = timings.get(k)?;
            if tk.pc != pc {
                return None;
            }
            let mut next_pc = pc + 1;
            match instr {
                Instr::Nop => {}
                Instr::Halt => halted = true,
                Instr::Jump { target } => next_pc = target as usize,
                Instr::LoadImm { rd, imm } => {
                    self.regs[rd.index()] = lanes::broadcast(imm as u32);
                }
                Instr::Alu { op, rd, rs1, rs2 } => {
                    let v = eval_alu(op, &self.regs[rs1.index()], &self.regs[rs2.index()], active);
                    self.regs[rd.index()] = v;
                }
                Instr::AluImm { op, rd, rs1, imm } => {
                    let v = eval_alu_imm(op, &self.regs[rs1.index()], imm as u32);
                    self.regs[rd.index()] = v;
                }
                Instr::Load { rd, base, offset } => {
                    lanes::extract(&self.regs[base.index()], &mut vals);
                    let addr = peel_divergent_addrs(&vals, offset, words, &mut active);
                    let mut loaded = [0u32; LANES];
                    let mut act = active;
                    while act != 0 {
                        let l = act.trailing_zeros() as usize;
                        act &= act - 1;
                        loaded[l] = self.mems[l][addr];
                    }
                    self.regs[rd.index()] = lanes::deposit(&loaded);
                }
                Instr::Store { src, base, offset } => {
                    lanes::extract(&self.regs[base.index()], &mut vals);
                    let addr = peel_divergent_addrs(&vals, offset, words, &mut active);
                    lanes::extract(&self.regs[src.index()], &mut vals);
                    let mut act = active;
                    while act != 0 {
                        let l = act.trailing_zeros() as usize;
                        act &= act - 1;
                        self.mems[l][addr] = vals[l];
                    }
                }
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let m = branch_mask(cond, &self.regs[rs1.index()], &self.regs[rs2.index()]);
                    let taken = m & 1 == 1; // leader's direction
                    let follow = if taken { m } else { !m };
                    active &= follow; // peel lanes that went the other way
                    if taken {
                        next_pc = target as usize;
                    }
                }
            }
            // Epoch boundary: a seq gap to the next committed
            // instruction means this one flushed wrong-path work. The
            // gap's flush events (nested ones first, the committed
            // flusher's own last) must tile it exactly, and every lane
            // must agree with the leader on the replayed resolved
            // directions and addresses to stay converged across it.
            if let Some(tn) = timings.get(k + 1) {
                if tn.seq != tk.seq + 1 {
                    self.replay_gap(
                        replay,
                        &mut ev,
                        tk.seq,
                        tn.seq,
                        words,
                        &mut active,
                        &mut replay_peeled,
                    )?;
                    gaps += 1;
                }
            }
            if next_pc >= instrs.len() {
                halted = true;
            }
            pc = next_pc;
            k += 1;
        }
        if k != timings.len() {
            return None;
        }
        if ev != replay.events.len() {
            // Flush work the walk could not place against a committed
            // gap: a trailing flush into the synthetic-halt run-out.
            return None;
        }
        Some(Lockstep {
            active,
            replay_peeled,
            epochs: gaps + 1,
        })
    }

    /// Replay one committed-sequence gap `(flusher_seq, next_seq)`:
    /// consume this gap's flush events (its nested events were all
    /// recorded before the outer one, whose `branch_seq` is the
    /// committed flusher), verify their union tiles the gap exactly,
    /// and replay the merged wrong-path work in sequence order for all
    /// lanes at once, peeling lanes whose resolved branch directions
    /// or effective addresses diverge from the leader's logged ones.
    /// Returns `None` — demoting the group — if the events cannot tile
    /// the gap or *lane 0* disagrees with the log (the replay
    /// semantics are then wrong and no shared result can be trusted).
    ///
    /// Each event's register and store writes are scoped to its own
    /// seq range via the undo journal: wrong-path fetch resumed from a
    /// nested flush point, so entries past an event's last seq never
    /// saw its values. Event ranges are pairwise disjoint, which makes
    /// the open scopes properly nested and LIFO undo exact.
    #[allow(clippy::too_many_arguments)]
    fn replay_gap(
        &mut self,
        replay: &ReplayLog,
        ev: &mut usize,
        flusher_seq: u64,
        next_seq: u64,
        words: usize,
        active: &mut u64,
        replay_peeled: &mut u64,
    ) -> Option<()> {
        // Consume events until the outer one. Everything before it is
        // a nested flush inside this gap; its flusher is a wrong-path
        // entry, so its seq must lie strictly inside the gap.
        let start = *ev;
        loop {
            let e = replay.events.get(*ev)?;
            *ev += 1;
            if e.branch_seq == flusher_seq {
                break;
            }
            if e.branch_seq <= flusher_seq || e.branch_seq >= next_seq {
                return None;
            }
        }
        let events = &replay.events[start..*ev];

        self.wp_gen_cur = self.wp_gen_cur.wrapping_add(1);
        if self.wp_gen_cur == 0 {
            self.wp_gen.fill(0);
            self.wp_gen_cur = 1;
        }
        self.wp_stores.clear();
        self.journal.clear();
        self.gap_scopes.clear();
        self.gap_cursors.clear();
        self.gap_cursors.resize(events.len(), 0);

        for expected in flusher_seq + 1..next_seq {
            // The merge step: exactly one event's cursor must sit on
            // the expected seq (events record entries in seq order).
            let j = (0..events.len()).find(|&j| {
                let seg = replay.flushed(&events[j]);
                let c = self.gap_cursors[j];
                c < seg.len() && seg[c].seq == expected
            })?;
            let seg = replay.flushed(&events[j]);
            let c = self.gap_cursors[j];
            if c == 0 {
                let last = seg.last().expect("events record at least one entry").seq;
                self.gap_scopes
                    .push((last, self.journal.len(), self.wp_stores.len()));
            }
            self.gap_cursors[j] = c + 1;
            self.replay_entry(&seg[c], words, active, replay_peeled)?;
            while let Some(&(last, jm, sm)) = self.gap_scopes.last() {
                if last != expected {
                    break;
                }
                self.gap_scopes.pop();
                self.undo_to(jm, sm);
            }
        }
        // Exact tiling: every consumed event fully merged into the gap.
        for (j, e) in events.iter().enumerate() {
            if self.gap_cursors[j] != replay.flushed(e).len() {
                return None;
            }
        }
        Some(())
    }

    /// Roll the wrong-path overlays back to a scope's marks, undoing
    /// register writes youngest-first and truncating the store overlay.
    fn undo_to(&mut self, journal_mark: usize, stores_mark: usize) {
        while self.journal.len() > journal_mark {
            let (r, gen, vals) = self.journal.pop().expect("len checked");
            self.wp_gen[r] = gen;
            self.wp_val[r] = vals;
        }
        self.wp_stores.truncate(stores_mark);
    }

    /// Replay a single squashed wrong-path entry for all lanes at
    /// once.
    ///
    /// Value semantics mirror the engine's wrong-path execution:
    /// registers start from the lock-step architectural state at the
    /// flush boundary (the generation-stamped overlay), loads forward
    /// from the youngest older wrong-path store to the same address
    /// (the store overlay — wrong-path stores never reach memory) and
    /// fall back to lane memory, and entries without a logged fact are
    /// don't-cares (their consumers never issued).
    fn replay_entry(
        &mut self,
        fe: &FlushedEntry,
        words: usize,
        active: &mut u64,
        replay_peeled: &mut u64,
    ) -> Option<()> {
        {
            match fe.instr {
                Instr::Nop | Instr::Halt | Instr::Jump { .. } => {}
                Instr::LoadImm { rd, imm } => self.wp_write(rd.index(), [imm as u32; LANES]),
                Instr::Alu { op, rd, rs1, rs2 } => {
                    let a = self.wp_read(rs1.index());
                    let b = self.wp_read(rs2.index());
                    let mut out = [0u32; LANES];
                    for l in 0..LANES {
                        out[l] = op.apply(a[l], b[l]);
                    }
                    self.wp_write(rd.index(), out);
                }
                Instr::AluImm { op, rd, rs1, imm } => {
                    let a = self.wp_read(rs1.index());
                    let mut out = [0u32; LANES];
                    for l in 0..LANES {
                        out[l] = op.apply(a[l], imm as u32);
                    }
                    self.wp_write(rd.index(), out);
                }
                Instr::Load { rd, base, offset } => {
                    let Some(addr0) = fe.mem_addr else {
                        // Never issued ⇒ no consumer of its value ever
                        // issued either; the value is a don't-care.
                        self.wp_write(rd.index(), [0u32; LANES]);
                        return Some(());
                    };
                    let bases = self.wp_read(base.index());
                    self.peel_wrong_addrs(&bases, offset, words, addr0, active, replay_peeled)?;
                    let mut out = [0u32; LANES];
                    match self.wp_stores.iter().rev().find(|(a, _)| *a == addr0) {
                        Some((_, vs)) => out = *vs,
                        None => {
                            let mut act = *active;
                            while act != 0 {
                                let l = act.trailing_zeros() as usize;
                                act &= act - 1;
                                out[l] = self.mems[l][addr0];
                            }
                        }
                    }
                    self.wp_write(rd.index(), out);
                }
                Instr::Store { src, base, offset } => {
                    let Some(addr0) = fe.mem_addr else {
                        // Never resolved ⇒ every younger wrong-path
                        // load was blocked behind it and never issued.
                        return Some(());
                    };
                    let bases = self.wp_read(base.index());
                    self.peel_wrong_addrs(&bases, offset, words, addr0, active, replay_peeled)?;
                    let svals = self.wp_read(src.index());
                    self.wp_stores.push((addr0, svals));
                }
                Instr::Branch { cond, rs1, rs2, .. } => {
                    let Some(dir) = fe.resolved_taken else {
                        // Untrained (resolved no earlier than the flush
                        // cycle, or never): left no timing trace.
                        return Some(());
                    };
                    let a = self.wp_read(rs1.index());
                    let b = self.wp_read(rs2.index());
                    if cond.eval(a[0], b[0]) != dir {
                        return None; // lane-0 self-check failed
                    }
                    let mut peel = 0u64;
                    let mut act = *active & !1;
                    while act != 0 {
                        let l = act.trailing_zeros() as usize;
                        act &= act - 1;
                        if cond.eval(a[l], b[l]) != dir {
                            peel |= 1u64 << l;
                        }
                    }
                    *active &= !peel;
                    *replay_peeled |= peel;
                }
            }
        }
        Some(())
    }

    /// Segment-replay address check: lane 0's computed address must
    /// equal the leader's logged one (else the replay is wrong —
    /// demote); every other active lane computing a different address
    /// peels.
    fn peel_wrong_addrs(
        &self,
        bases: &[u32; LANES],
        offset: i32,
        words: usize,
        addr0: usize,
        active: &mut u64,
        replay_peeled: &mut u64,
    ) -> Option<()> {
        if (bases[0].wrapping_add(offset as u32) as usize) % words != addr0 {
            return None;
        }
        let mut peel = 0u64;
        let mut act = *active & !1;
        while act != 0 {
            let l = act.trailing_zeros() as usize;
            act &= act - 1;
            if (bases[l].wrapping_add(offset as u32) as usize) % words != addr0 {
                peel |= 1u64 << l;
            }
        }
        *active &= !peel;
        *replay_peeled |= peel;
        Some(())
    }

    /// Read a register's per-lane values during segment replay: the
    /// overlay if this segment wrote it, the lock-step architectural
    /// state otherwise (cached into the overlay so repeated reads cost
    /// one extraction).
    fn wp_read(&mut self, r: usize) -> [u32; LANES] {
        if self.wp_gen[r] != self.wp_gen_cur {
            let mut vals = [0u32; LANES];
            lanes::extract(&self.regs[r], &mut vals);
            self.wp_val[r] = vals;
            self.wp_gen[r] = self.wp_gen_cur;
        }
        self.wp_val[r]
    }

    /// Write a register's per-lane values into the segment overlay
    /// (architectural lane state is never touched by wrong-path work),
    /// journalling the displaced state so a closing event scope can
    /// undo it. A stale displaced generation restores as stale — the
    /// next read simply re-extracts the boundary state.
    fn wp_write(&mut self, r: usize, vals: [u32; LANES]) {
        self.journal.push((r, self.wp_gen[r], self.wp_val[r]));
        self.wp_val[r] = vals;
        self.wp_gen[r] = self.wp_gen_cur;
    }

    /// Cross-check lane 0's lock-step state against the engine's
    /// result. Lane 0 ran both paths; if they disagree, the lock-step
    /// pass is wrong and the group must not share its results.
    fn verify_leader(&self, num_regs: usize, leader: &RunResult) -> bool {
        if self.mems[0] != leader.mem {
            return false;
        }
        let mut vals = [0u32; LANES];
        for r in 0..num_regs {
            lanes::extract(&self.regs[r], &mut vals);
            if vals[0] != leader.regs[r] {
                return false;
            }
        }
        true
    }

    /// Hand out results: converged lanes inherit the leader's schedule
    /// (cycles, stats, timings) with their own registers and memory
    /// from the lane substrate; peeled lanes re-run serially.
    fn assemble<P: Borrow<Program>>(
        &mut self,
        engine: &mut Ultrascalar,
        programs: &[P],
        leader: &RunResult,
        rest: &mut [RunResult],
        active: u64,
    ) {
        let num_regs = programs[0].borrow().num_regs;
        let mut vals = [0u32; LANES];
        // Registers first, one extraction per architectural register
        // covering every converged lane at once.
        for (i, slot) in rest.iter_mut().enumerate() {
            if active >> (i + 1) & 1 == 1 {
                slot.regs.clear();
                slot.regs.resize(num_regs, 0);
            }
        }
        for r in 0..num_regs {
            lanes::extract(&self.regs[r], &mut vals);
            for (i, slot) in rest.iter_mut().enumerate() {
                if active >> (i + 1) & 1 == 1 {
                    slot.regs[r] = vals[i + 1];
                }
            }
        }
        for (i, slot) in rest.iter_mut().enumerate() {
            let l = i + 1;
            if active >> l & 1 == 1 {
                slot.halted = true;
                slot.cycles = leader.cycles;
                slot.stats.clone_from(&leader.stats);
                slot.timings.clone_from(&leader.timings);
                std::mem::swap(&mut slot.mem, &mut self.mems[l]);
            } else {
                engine.run_reusing(programs[l].borrow(), slot);
            }
        }
    }
}

/// Serial scalar runs for a whole group (the always-correct path).
fn run_serial<P: Borrow<Program>>(engine: &mut Ultrascalar, programs: &[P], out: &mut [RunResult]) {
    for (p, o) in programs.iter().zip(out.iter_mut()) {
        engine.run_reusing(p.borrow(), o);
    }
}

/// The effective memory size every lane must agree on (the engine and
/// interpreter both size memory as
/// `max(cfg.mem.words, init_mem.len(), 1)`), or `None` if the group is
/// not lane-batchable: instruction streams, register-file sizes, or
/// effective memory sizes differ.
fn compatible_words<P: Borrow<Program>>(cfg: &ProcConfig, programs: &[P]) -> Option<usize> {
    let p0 = programs[0].borrow();
    let words = cfg.mem.words.max(p0.init_mem.len()).max(1);
    for p in &programs[1..] {
        let p = p.borrow();
        if p.instrs != p0.instrs
            || p.num_regs != p0.num_regs
            || cfg.mem.words.max(p.init_mem.len()).max(1) != words
        {
            return None;
        }
    }
    Some(words)
}

/// Per-lane effective addresses from extracted base values; peels
/// (clears from `active`) every non-leader lane whose address differs
/// from lane 0's, and returns the leader's address.
#[inline]
fn peel_divergent_addrs(
    bases: &[u32; LANES],
    offset: i32,
    words: usize,
    active: &mut u64,
) -> usize {
    let addr0 = (bases[0].wrapping_add(offset as u32) as usize) % words;
    let mut act = *active & !1;
    while act != 0 {
        let l = act.trailing_zeros() as usize;
        act &= act - 1;
        if (bases[l].wrapping_add(offset as u32) as usize) % words != addr0 {
            *active &= !(1u64 << l);
        }
    }
    addr0
}

/// One ALU op over all lanes. Shifts by a lane-uniform amount (over
/// the active lanes) relabel planes; everything without a cheap plane
/// form goes through the transpose escape hatch.
fn eval_alu(op: AluOp, a: &LaneValue, b: &LaneValue, active: u64) -> LaneValue {
    match op {
        AluOp::Add => lanes::add(a, b),
        AluOp::Sub => lanes::sub(a, b),
        AluOp::And => lanes::and(a, b),
        AluOp::Or => lanes::or(a, b),
        AluOp::Xor => lanes::xor(a, b),
        AluOp::Slt => lanes::mask_value(lanes::lt_mask(a, b)),
        AluOp::Sltu => lanes::mask_value(lanes::ltu_mask(a, b)),
        AluOp::Sll | AluOp::Srl | AluOp::Sra => match lanes::uniform_value(b, active) {
            Some(sh) => eval_shift(op, a, sh),
            None => lanes::map2(a, b, |x, y| op.apply(x, y)),
        },
        AluOp::Mul | AluOp::Div | AluOp::Rem => lanes::map2(a, b, |x, y| op.apply(x, y)),
    }
}

/// The register–immediate forms: the second operand is lane-uniform by
/// construction, so shifts always take the plane-relabelling path.
fn eval_alu_imm(op: AluOp, a: &LaneValue, imm: u32) -> LaneValue {
    match op {
        AluOp::Sll | AluOp::Srl | AluOp::Sra => eval_shift(op, a, imm),
        _ => eval_alu(op, a, &lanes::broadcast(imm), u64::MAX),
    }
}

/// Lane-uniform shift (amount masked mod 32, as `AluOp::apply` does).
#[inline]
fn eval_shift(op: AluOp, a: &LaneValue, amount: u32) -> LaneValue {
    let sh = amount & 31;
    match op {
        AluOp::Sll => lanes::sll_uniform(a, sh),
        AluOp::Srl => lanes::srl_uniform(a, sh),
        AluOp::Sra => lanes::sra_uniform(a, sh),
        _ => unreachable!("eval_shift is only called for shift ops"),
    }
}

/// Per-lane branch condition mask (bit `l` set iff lane `l` takes).
fn branch_mask(cond: BranchCond, a: &LaneValue, b: &LaneValue) -> u64 {
    match cond {
        BranchCond::Eq => lanes::eq_mask(a, b),
        BranchCond::Ne => !lanes::eq_mask(a, b),
        BranchCond::Lt => lanes::lt_mask(a, b),
        BranchCond::Ge => !lanes::lt_mask(a, b),
        BranchCond::Ltu => lanes::ltu_mask(a, b),
        BranchCond::Geu => !lanes::ltu_mask(a, b),
    }
}

/// The ISSUE-facing convenience wrapper: an engine plus its lane
/// batcher as one unit, for callers that own their engine (benches,
/// tests). `usim serve` composes [`LaneBatcher`] with pooled engines
/// directly instead.
#[derive(Debug)]
pub struct LaneBatchEngine {
    engine: Ultrascalar,
    batcher: LaneBatcher,
}

impl LaneBatchEngine {
    /// An engine + batcher for the given configuration.
    pub fn new(cfg: ProcConfig) -> Self {
        LaneBatchEngine {
            engine: Ultrascalar::new(cfg),
            batcher: LaneBatcher::new(),
        }
    }

    /// The wrapped engine's configuration.
    pub fn config(&self) -> &ProcConfig {
        self.engine.config()
    }

    /// Batch-level lane counters.
    pub fn lane_stats(&self) -> &LaneBatchStats {
        self.batcher.stats()
    }

    /// Run a batch; see [`LaneBatcher::run_batch`].
    pub fn run_batch<P: Borrow<Program>>(&mut self, programs: &[P], out: &mut [RunResult]) {
        self.batcher.run_batch(&mut self.engine, programs, out);
    }

    /// Direct scalar access to the wrapped engine.
    pub fn engine_mut(&mut self) -> &mut Ultrascalar {
        &mut self.engine
    }
}
