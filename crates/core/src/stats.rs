//! Run statistics collected by every processor model.

use ultrascalar_memsys::MemStats;

/// Aggregate statistics of one run.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycles simulated (until the halt committed).
    pub cycles: u64,
    /// Architectural (committed) instructions, excluding the synthetic
    /// end-of-program halt.
    pub committed: u64,
    /// Branch instructions committed.
    pub branches: u64,
    /// Committed branches that had been mispredicted.
    pub mispredictions: u64,
    /// Wrong-path instructions flushed.
    pub flushed: u64,
    /// Sum over cycles of occupied stations (divide by cycles for mean
    /// occupancy).
    pub occupancy_sum: u64,
    /// Histogram of producer→consumer forwarding distances in dynamic
    /// instructions (index 0 = immediate predecessor); reads satisfied
    /// by the committed register file are counted in
    /// [`ProcStats::regfile_reads`]. Used for the paper's §7 locality
    /// back-of-envelope.
    pub forward_dist: Vec<u64>,
    /// Operand reads satisfied from the committed register file.
    pub regfile_reads: u64,
    /// Histogram of instructions issued per cycle: `issue_hist[k]` =
    /// number of cycles in which exactly `k` instructions started
    /// execution (the window's realised ILP profile).
    pub issue_hist: Vec<u64>,
    /// Loads satisfied by store→load forwarding (memory renaming on).
    pub store_forwards: u64,
    /// Issue opportunities lost to shared-ALU contention: ready
    /// instructions that could not start because no ALU was free.
    pub alu_stalls: u64,
    /// Runs in which `ProcConfig::packed_flags` was requested but the
    /// engine's gate kept the scalar scan — since pipelined forwarding
    /// rides the hop-banded readiness words, the only remaining cause
    /// is a register file wider than the packed lane words
    /// (`num_regs > 256`). The packed-values snapshot rides on the
    /// same gate, so a counted fallback also means the value-snapshot
    /// resolve did not run.
    /// Zero whenever the packed fast path actually ran — a silent
    /// downgrade would otherwise be invisible in sweeps over the very
    /// regimes the packed paths exist for. `usim serve` aggregates
    /// this counter across requests in its `{"cmd":"stats"}` report.
    pub packed_fallbacks: u64,
    /// Runs in which the packed fast path was requested and would fit
    /// the lane words, but the engine's *shape gate* chose the scalar
    /// scan because the configuration shape measures as a net loss for
    /// the packed path (see `ProcConfig::packed_shape_wins`; pipelined
    /// forwarding, latency-bearing memory or a batch-refill `C = n`
    /// window). Distinct from `packed_fallbacks`: that counter marks a
    /// capability fallback, this one a deliberate, measured policy
    /// decision. `ProcConfig::packed_override` forces the packed path
    /// and keeps this at zero.
    pub packed_shape_gated: u64,
    /// Memory-system counters.
    pub mem: MemStats,
}

impl Clone for ProcStats {
    fn clone(&self) -> Self {
        let mut out = ProcStats::default();
        out.clone_from(self);
        out
    }

    /// Hand-written so `clone_from` reuses the histogram allocations —
    /// the lane-batch engine clones one leader's stats into up to 63
    /// retained result slots per batch, which must not touch the
    /// allocator once warm. Exhaustive destructuring keeps this in sync
    /// with the struct by construction.
    fn clone_from(&mut self, source: &Self) {
        let ProcStats {
            cycles,
            committed,
            branches,
            mispredictions,
            flushed,
            occupancy_sum,
            forward_dist,
            regfile_reads,
            issue_hist,
            store_forwards,
            alu_stalls,
            packed_fallbacks,
            packed_shape_gated,
            mem,
        } = self;
        *cycles = source.cycles;
        *committed = source.committed;
        *branches = source.branches;
        *mispredictions = source.mispredictions;
        *flushed = source.flushed;
        *occupancy_sum = source.occupancy_sum;
        forward_dist.clone_from(&source.forward_dist);
        *regfile_reads = source.regfile_reads;
        issue_hist.clone_from(&source.issue_hist);
        *store_forwards = source.store_forwards;
        *alu_stalls = source.alu_stalls;
        *packed_fallbacks = source.packed_fallbacks;
        *packed_shape_gated = source.packed_shape_gated;
        *mem = source.mem;
    }
}

impl ProcStats {
    /// Rewind to the default state in place: counters zeroed and
    /// histograms emptied while keeping their allocations, so an engine
    /// reusing a `RunResult` across requests regrows them without
    /// touching the allocator. Exhaustive destructuring keeps this in
    /// sync with the struct by construction.
    pub fn reset(&mut self) {
        let ProcStats {
            cycles,
            committed,
            branches,
            mispredictions,
            flushed,
            occupancy_sum,
            forward_dist,
            regfile_reads,
            issue_hist,
            store_forwards,
            alu_stalls,
            packed_fallbacks,
            packed_shape_gated,
            mem,
        } = self;
        *cycles = 0;
        *committed = 0;
        *branches = 0;
        *mispredictions = 0;
        *flushed = 0;
        *occupancy_sum = 0;
        forward_dist.clear();
        *regfile_reads = 0;
        issue_hist.clear();
        *store_forwards = 0;
        *alu_stalls = 0;
        *packed_fallbacks = 0;
        *packed_shape_gated = 0;
        *mem = MemStats::default();
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mean window occupancy (stations holding instructions).
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Record that `k` instructions issued in some cycle.
    pub fn record_issue_count(&mut self, k: usize) {
        if self.issue_hist.len() <= k {
            self.issue_hist.resize(k + 1, 0);
        }
        self.issue_hist[k] += 1;
    }

    /// Record `n` consecutive idle cycles (zero instructions issued) in
    /// closed form. The event-driven engines use this to account for a
    /// skipped quiet span exactly as the naive per-cycle loop would
    /// have: `n` increments of `issue_hist[0]`.
    pub fn record_idle_cycles(&mut self, n: u64) {
        if self.issue_hist.is_empty() {
            self.issue_hist.resize(1, 0);
        }
        self.issue_hist[0] += n;
    }

    /// Mean instructions issued per cycle (from the histogram).
    pub fn mean_issue_rate(&self) -> f64 {
        let cycles: u64 = self.issue_hist.iter().sum();
        if cycles == 0 {
            return 0.0;
        }
        let issued: u64 = self
            .issue_hist
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        issued as f64 / cycles as f64
    }

    /// Record one forwarding at the given dynamic distance.
    pub fn record_forward(&mut self, dist: u64) {
        let d = dist as usize;
        if self.forward_dist.len() <= d {
            self.forward_dist.resize(d + 1, 0);
        }
        self.forward_dist[d] += 1;
    }

    /// Fraction of in-window forwardings with distance 1 (producer is
    /// the immediate predecessor) — the paper's §7 "half of the
    /// communications paths from one station to its successor are
    /// completely local" estimate. Distances are recorded as
    /// `consumer.seq − producer.seq`, so the local bucket is index 1.
    pub fn local_forward_fraction(&self) -> f64 {
        let total: u64 = self.forward_dist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.forward_dist.get(1).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Misprediction rate over committed branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_occupancy() {
        let s = ProcStats {
            cycles: 10,
            committed: 25,
            occupancy_sum: 40,
            ..ProcStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mean_occupancy() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_safe() {
        let s = ProcStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mean_occupancy(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.local_forward_fraction(), 0.0);
    }

    #[test]
    fn forward_histogram() {
        let mut s = ProcStats::default();
        s.record_forward(1);
        s.record_forward(1);
        s.record_forward(3);
        assert_eq!(s.forward_dist, vec![0, 2, 0, 1]);
        // Two of three forwardings came from the immediate predecessor.
        assert!((s.local_forward_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }
}
