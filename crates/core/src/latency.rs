//! Functional-unit latencies.
//!
//! The paper's Figure 3 timing diagram "assume\[s\] that division takes
//! 10 clock cycles, multiplication 3, and addition 1"; those are the
//! defaults here.

use ultrascalar_isa::{AluOp, Instr};

/// Cycles each operation class occupies its station's functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Simple ALU ops (add/sub/logic/shift/compare).
    pub alu: u64,
    /// Multiplication.
    pub mul: u64,
    /// Division and remainder.
    pub div: u64,
    /// Branch resolution.
    pub branch: u64,
    /// Register-producing non-memory trivial ops (`li`).
    pub imm: u64,
}

impl Default for LatencyModel {
    /// The paper's Figure 3 latencies.
    fn default() -> Self {
        LatencyModel {
            alu: 1,
            mul: 3,
            div: 10,
            branch: 1,
            imm: 1,
        }
    }
}

impl LatencyModel {
    /// All-single-cycle latencies (useful for tests where only the
    /// dataflow shape matters).
    pub fn unit() -> Self {
        LatencyModel {
            alu: 1,
            mul: 1,
            div: 1,
            branch: 1,
            imm: 1,
        }
    }

    /// Latency in cycles for one instruction's functional-unit phase
    /// (memory instructions return the address-generation latency; the
    /// memory system adds its own).
    pub fn of(&self, i: &Instr) -> u64 {
        match i {
            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => match op {
                AluOp::Mul => self.mul,
                AluOp::Div | AluOp::Rem => self.div,
                _ => self.alu,
            },
            Instr::LoadImm { .. } => self.imm,
            Instr::Branch { .. } => self.branch,
            // Loads/stores: address generation is folded into the
            // memory round trip; jumps, nops and halts are resolved at
            // fetch/decode and occupy no FU time beyond one cycle.
            Instr::Load { .. } | Instr::Store { .. } => 1,
            Instr::Jump { .. } | Instr::Halt | Instr::Nop => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_isa::Reg;

    #[test]
    fn figure3_defaults() {
        let m = LatencyModel::default();
        let alu = |op| Instr::Alu {
            op,
            rd: Reg(0),
            rs1: Reg(0),
            rs2: Reg(0),
        };
        assert_eq!(m.of(&alu(AluOp::Add)), 1);
        assert_eq!(m.of(&alu(AluOp::Sub)), 1);
        assert_eq!(m.of(&alu(AluOp::Mul)), 3);
        assert_eq!(m.of(&alu(AluOp::Div)), 10);
        assert_eq!(m.of(&alu(AluOp::Rem)), 10);
        assert_eq!(m.of(&Instr::Nop), 1);
    }

    #[test]
    fn unit_model_is_flat() {
        let m = LatencyModel::unit();
        for op in AluOp::ALL {
            assert_eq!(
                m.of(&Instr::Alu {
                    op,
                    rd: Reg(0),
                    rs1: Reg(0),
                    rs2: Reg(0)
                }),
                1
            );
        }
    }
}
