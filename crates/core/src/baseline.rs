//! A conventional idealized out-of-order superscalar: the baseline the
//! paper compares against ("the datapath … exploits the same
//! instruction-level parallelism as today's superscalars").
//!
//! Deliberately implemented the *conventional* way — a register rename
//! map consulted once at dispatch, reorder-buffer tags, broadcast
//! value substitution at retirement, rename-map rollback on flush —
//! rather than the Ultrascalar's continuous nearest-preceding-writer
//! search. The integration tests assert cycle-for-cycle equality
//! against [`crate::engine::Ultrascalar`] with `C = 1`, which is the
//! paper's functional-equivalence claim.

use std::collections::VecDeque;

use crate::config::ProcConfig;
use crate::fetch::{FetchUnit, TraceCache};
use crate::processor::{Processor, RunResult};
use crate::station::{MemPhase, StationEntry};
use crate::stats::ProcStats;
use crate::timing::InstrTiming;
use ultrascalar_isa::{Instr, Program, Reg};
use ultrascalar_memsys::{MemRequest, MemSystem, ReqKind};

const ORACLE_FUEL: usize = 50_000_000;

/// A source operand captured at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    /// No operand in this slot.
    None,
    /// An immediate value (from the committed register file, or
    /// substituted at the producer's retirement).
    Value(u32),
    /// Waiting on the ROB entry with this sequence number.
    Tag(u64),
}

#[derive(Debug, Clone)]
struct RobEntry {
    st: StationEntry,
    ring_index: usize,
    src: [Operand; 2],
}

/// Locate the ROB entry with sequence number `id` by binary search —
/// the allocation-free replacement for the per-cycle `HashMap` locator
/// and producer-snapshot map. Sequence numbers are monotone and never
/// reused, dispatch appends and flush truncates a suffix, so the ROB is
/// always sorted ascending by `seq` (with gaps after a flush).
fn rob_locate(rob: &VecDeque<RobEntry>, id: u64) -> Option<usize> {
    let i = rob.partition_point(|e| e.st.seq < id);
    (rob.get(i)?.st.seq == id).then_some(i)
}

/// The baseline processor. `window`, `latency`, `predictor`, `mem`,
/// `alus` and `max_cycles` of the configuration are used (`cluster` is
/// ignored — retirement is per-entry; `memory_renaming` and pipelined
/// forwarding are Ultrascalar-specific mechanisms and are ignored
/// here).
#[derive(Debug, Clone)]
pub struct BaselineOoO {
    cfg: ProcConfig,
}

impl BaselineOoO {
    /// Create a baseline processor.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ProcConfig) -> Self {
        cfg.validate().expect("invalid processor configuration");
        BaselineOoO { cfg }
    }
}

impl Processor for BaselineOoO {
    fn name(&self) -> String {
        format!("baseline-ooo(n={})", self.cfg.window)
    }

    fn run(&mut self, program: &Program) -> RunResult {
        program.validate().expect("program must validate");
        let n = self.cfg.window;
        let lat = self.cfg.latency;

        let mut fetch = FetchUnit::new(program, self.cfg.predictor, ORACLE_FUEL);
        let mut mem = MemSystem::new(self.cfg.mem.clone(), &program.init_mem);
        let mut committed_regs = program.init_regs.clone();
        let mut rename: Vec<Option<u64>> = vec![None; program.num_regs];
        let mut rob: VecDeque<RobEntry> = VecDeque::with_capacity(n);
        let mut next_seq: u64 = 0;
        let mut alloc_counter: usize = 0;
        let mut stats = ProcStats::default();
        let mut timings: Vec<InstrTiming> = Vec::new();
        let mut halted = false;
        let mut alu_free_at: Vec<u64> = self.cfg.alus.map(|k| vec![0u64; k]).unwrap_or_default();
        let mut trace_cache = self
            .cfg
            .trace_cache
            .map(|(entries, penalty)| TraceCache::new(entries, penalty));
        let mut fetch_stalled_until: u64 = 0;

        // Dispatch: fill the ROB, consulting the rename map once per
        // operand (the conventional design point); at most
        // `fetch_width` instructions per cycle.
        let fetch_budget = self.cfg.fetch_width.unwrap_or(n);
        let dispatch = |rob: &mut VecDeque<RobEntry>,
                        fetch: &mut FetchUnit,
                        rename: &mut Vec<Option<u64>>,
                        committed_regs: &Vec<u32>,
                        next_seq: &mut u64,
                        alloc_counter: &mut usize,
                        stats: &mut ProcStats,
                        visible_at: u64| {
            let mut budget = fetch_budget;
            while rob.len() < n && budget > 0 {
                budget -= 1;
                let Some(f) = fetch.next() else { return };
                let st = StationEntry::new(*next_seq, f.pc, f.instr, f.predicted_next, visible_at);
                let mut src = [Operand::None; 2];
                for (slot, r) in f.instr.reads().into_iter().enumerate() {
                    if let Some(r) = r {
                        src[slot] = match rename[r.index()] {
                            Some(tag) => {
                                stats.record_forward(*next_seq - tag);
                                Operand::Tag(tag)
                            }
                            None => {
                                stats.regfile_reads += 1;
                                Operand::Value(committed_regs[r.index()])
                            }
                        };
                    }
                }
                if let Some(rd) = f.instr.writes() {
                    rename[rd.index()] = Some(*next_seq);
                }
                rob.push_back(RobEntry {
                    st,
                    ring_index: *alloc_counter,
                    src,
                });
                *next_seq += 1;
                *alloc_counter += 1;
            }
        };

        dispatch(
            &mut rob,
            &mut fetch,
            &mut rename,
            &committed_regs,
            &mut next_seq,
            &mut alloc_counter,
            &mut stats,
            0,
        );

        // Per-cycle request buffer, reused across the whole run (the
        // scan itself is allocation-free: producer lookups go through
        // [`rob_locate`] instead of per-cycle snapshot maps).
        let mut requests: Vec<MemRequest> = Vec::new();

        // Producer lookup, live against the ROB. Equivalent to the
        // start-of-cycle snapshot it replaces: an entry that issues
        // during this same scan gets `completed_at >= t`, so its
        // `done_before(t)` stays false and its (unused) value is never
        // observed, and ROB positions are stable mid-scan.
        let operand = |rob: &VecDeque<RobEntry>, o: Operand, t: u64| -> (bool, u32) {
            match o {
                Operand::None => (true, 0),
                Operand::Value(v) => (true, v),
                Operand::Tag(tag) => {
                    let j =
                        rob_locate(rob, tag).expect("tag producer still in ROB until substituted");
                    (rob[j].st.done_before(t), rob[j].st.result.unwrap_or(0))
                }
            }
        };

        let mut t: u64 = 0;
        while t < self.cfg.max_cycles {
            if rob.is_empty() && fetch.exhausted() {
                break;
            }
            let occupancy = rob.len() as u64;
            stats.occupancy_sum += occupancy;

            // Event-driven cycle skipping: collect the earliest future
            // completion plus the evidence needed to decide afterwards
            // whether this cycle was silent (see the same machinery in
            // the Ultrascalar engine). The baseline has no forwarding-
            // latency model, so producer completions are the only
            // operand wake-up events.
            let mut next_completion = u64::MAX;
            let mut completes_now = false;
            let alu_stalls_before = stats.alu_stalls;

            // ---- Wakeup & select: an operand is ready when its
            // producer's result has been on the bypass network since
            // the previous cycle (same convention as the Ultrascalar).
            // The serialisation flags are computed in the same scan.
            let mut all_stores_done = true;
            let mut all_loads_done = true;
            let mut all_branches_done = true;
            requests.clear();
            let mut free_alus = alu_free_at.iter().filter(|&&f| f <= t).count();

            for i in 0..rob.len() {
                let e = &rob[i];
                let leaf = e.ring_index % n;
                let eligible = e.st.issued_at.is_none() && t >= e.st.fetched_at;
                if eligible {
                    let (r0, v0) = operand(&rob, e.src[0], t);
                    let (r1, v1) = operand(&rob, e.src[1], t);
                    let e = &rob[i];
                    if r0 && r1 {
                        let instr = e.st.instr;
                        let seq = e.st.seq;
                        // Shared-ALU admission (Alu/AluImm classes),
                        // oldest-first by scan order.
                        let needs_alu = matches!(instr, Instr::Alu { .. } | Instr::AluImm { .. });
                        let alu_ok = self.cfg.alus.is_none() || free_alus > 0;
                        if needs_alu && !alu_ok {
                            stats.alu_stalls += 1;
                        }
                        let grab_alu = |rob: &VecDeque<RobEntry>,
                                        free: &mut usize,
                                        alu_free_at: &mut Vec<u64>,
                                        i: usize,
                                        t: u64| {
                            if self.cfg.alus.is_some() {
                                *free -= 1;
                                let done = rob[i].st.completed_at.expect("just set");
                                let slot = alu_free_at
                                    .iter_mut()
                                    .find(|f| **f <= t)
                                    .expect("free ALU counted");
                                *slot = done + 1;
                            }
                        };
                        match instr {
                            Instr::Alu { op, .. } if alu_ok => {
                                let e = &mut rob[i].st;
                                e.issued_at = Some(t);
                                e.completed_at = Some(t + lat.of(&instr) - 1);
                                e.result = Some(op.apply(v0, v1));
                                e.actual_next = Some(e.pc + 1);
                                grab_alu(&rob, &mut free_alus, &mut alu_free_at, i, t);
                            }
                            Instr::AluImm { op, imm, .. } if alu_ok => {
                                let e = &mut rob[i].st;
                                e.issued_at = Some(t);
                                e.completed_at = Some(t + lat.of(&instr) - 1);
                                e.result = Some(op.apply(v0, imm as u32));
                                e.actual_next = Some(e.pc + 1);
                                grab_alu(&rob, &mut free_alus, &mut alu_free_at, i, t);
                            }
                            Instr::Alu { .. } | Instr::AluImm { .. } => {}
                            Instr::LoadImm { imm, .. } => {
                                let e = &mut rob[i].st;
                                e.issued_at = Some(t);
                                e.completed_at = Some(t + lat.of(&instr) - 1);
                                e.result = Some(imm as u32);
                                e.actual_next = Some(e.pc + 1);
                            }
                            Instr::Branch { cond, target, .. } => {
                                let taken = cond.eval(v0, v1);
                                let e = &mut rob[i].st;
                                e.issued_at = Some(t);
                                e.completed_at = Some(t + lat.of(&instr) - 1);
                                e.taken = Some(taken);
                                e.actual_next =
                                    Some(if taken { target as usize } else { e.pc + 1 });
                            }
                            Instr::Jump { target } => {
                                let e = &mut rob[i].st;
                                e.issued_at = Some(t);
                                e.completed_at = Some(t);
                                e.actual_next = Some(target as usize);
                            }
                            Instr::Halt | Instr::Nop => {
                                let e = &mut rob[i].st;
                                e.issued_at = Some(t);
                                e.completed_at = Some(t);
                                e.actual_next = Some(e.pc + 1);
                            }
                            Instr::Load { offset, .. } => {
                                if all_stores_done {
                                    let addr =
                                        (v0.wrapping_add(offset as u32) as usize) % mem.words();
                                    requests.push(MemRequest {
                                        id: seq,
                                        leaf,
                                        addr,
                                        kind: ReqKind::Load,
                                    });
                                    rob[i].st.mem = MemPhase::Requesting;
                                }
                            }
                            Instr::Store { offset, .. } => {
                                if all_stores_done && all_loads_done && all_branches_done {
                                    let addr =
                                        (v0.wrapping_add(offset as u32) as usize) % mem.words();
                                    requests.push(MemRequest {
                                        id: seq,
                                        leaf,
                                        addr,
                                        kind: ReqKind::Store(v1),
                                    });
                                    rob[i].st.mem = MemPhase::Requesting;
                                }
                            }
                        }
                    }
                }
                let e = &rob[i].st;
                let done = e.done_before(t);
                match e.completed_at {
                    Some(ct) if ct > t => next_completion = next_completion.min(ct),
                    Some(ct) if ct == t => completes_now = true,
                    _ => {}
                }
                if e.instr.is_load() {
                    all_loads_done &= done;
                }
                if e.instr.is_store() {
                    all_stores_done &= done;
                }
                if e.instr.is_branch() {
                    all_branches_done &= done;
                }
            }

            // ---- Memory.
            let offered_requests = !requests.is_empty();
            let (accepted, responses) = mem.tick(t, &requests);
            let had_responses = !responses.is_empty();
            for id in accepted {
                if let Some(i) = rob_locate(&rob, id) {
                    rob[i].st.issued_at = Some(t);
                    rob[i].st.mem = MemPhase::InFlight;
                }
            }
            for resp in responses {
                if let Some(i) = rob_locate(&rob, resp.id) {
                    let e = &mut rob[i].st;
                    if e.mem == MemPhase::InFlight {
                        e.completed_at = Some(t);
                        e.result = resp.value;
                        e.actual_next = Some(e.pc + 1);
                        e.mem = MemPhase::None;
                    }
                }
            }
            let issued_now = rob.iter().filter(|e| e.st.issued_at == Some(t)).count();

            // ---- Branch resolution + flush with rename-map rollback.
            for i in 0..rob.len() {
                let e = &rob[i].st;
                if e.instr.is_branch() && e.completed_at == Some(t) {
                    fetch.train(e.pc, e.taken.unwrap_or(false));
                    if e.mispredicted() {
                        let correct = e.actual_next.expect("resolved");
                        stats.flushed += (rob.len() - (i + 1)) as u64;
                        rob.truncate(i + 1);
                        alloc_counter = rob[i].ring_index + 1;
                        // Rollback: rebuild the rename map from the
                        // surviving ROB (hardware restores a
                        // checkpoint).
                        rename.iter_mut().for_each(|r| *r = None);
                        for e in rob.iter() {
                            if let Some(rd) = e.st.instr.writes() {
                                rename[rd.index()] = Some(e.st.seq);
                            }
                        }
                        fetch.redirect(correct);
                        if let Some(tc) = &mut trace_cache {
                            fetch_stalled_until = t + 1 + tc.redirect(correct);
                        }
                        break;
                    }
                }
            }

            // ---- In-order retirement (per entry), with broadcast
            // substitution of the retiring tag.
            let mut retired_any = false;
            while let Some(front) = rob.front() {
                if !front.st.done_before(t) {
                    break;
                }
                let e = rob.pop_front().expect("front exists");
                retired_any = true;
                let seq = e.st.seq;
                let result = e.st.result;
                let synthetic = e.st.is_synthetic(program.len());
                if !synthetic {
                    stats.committed += 1;
                    timings.push(InstrTiming {
                        seq,
                        pc: e.st.pc,
                        instr: e.st.instr,
                        fetched: e.st.fetched_at,
                        issue: e.st.issued_at.expect("retired ⇒ issued"),
                        complete: e.st.completed_at.expect("retired ⇒ completed"),
                        slot: e.ring_index % n,
                    });
                    if e.st.instr.is_branch() {
                        stats.branches += 1;
                        if e.st.mispredicted() {
                            stats.mispredictions += 1;
                        }
                    }
                    if let Some(rd) = e.st.instr.writes() {
                        committed_regs[rd.index()] = result.expect("writer retired with result");
                        if rename[rd.index()] == Some(seq) {
                            rename[rd.index()] = None;
                        }
                    }
                }
                // Broadcast: outstanding consumers capture the value.
                if let Some(v) = result {
                    for waiting in rob.iter_mut() {
                        for s in &mut waiting.src {
                            if *s == Operand::Tag(seq) {
                                *s = Operand::Value(v);
                            }
                        }
                    }
                }
                if matches!(e.st.instr, Instr::Halt) {
                    halted = true;
                    break;
                }
            }
            if halted {
                t += 1;
                break;
            }

            // ---- Dispatch new instructions, visible next cycle
            // (unless a trace-cache miss is stalling fetch).
            let seq_before_dispatch = next_seq;
            if t + 1 >= fetch_stalled_until {
                dispatch(
                    &mut rob,
                    &mut fetch,
                    &mut rename,
                    &committed_regs,
                    &mut next_seq,
                    &mut alloc_counter,
                    &mut stats,
                    t + 1,
                );
            }
            let dispatched = next_seq != seq_before_dispatch;

            // ---- Cycle skip: a provably silent cycle (nothing issued
            // or ALU-stalled, no memory traffic, no completion,
            // retirement or dispatch) repeats identically until the
            // next scheduled event; jump there, accounting occupancy in
            // closed form. (The baseline keeps no per-cycle issue
            // histogram, so occupancy is the only closed-form stat.)
            let silent = issued_now == 0
                && !offered_requests
                && !had_responses
                && !completes_now
                && !retired_any
                && !dispatched
                && stats.alu_stalls == alu_stalls_before;
            if self.cfg.cycle_skip && silent {
                let mut event = next_completion;
                if let Some(m) = mem.next_completion_at() {
                    event = event.min(m);
                }
                let room = rob.len() < n;
                if t + 1 < fetch_stalled_until && room && !fetch.exhausted() {
                    event = event.min(fetch_stalled_until - 1);
                }
                let target = event.min(self.cfg.max_cycles).max(t + 1);
                let skipped = target - (t + 1);
                if skipped > 0 {
                    stats.occupancy_sum += skipped * occupancy;
                    t = target - 1;
                }
            }

            t += 1;
        }

        stats.cycles = t;
        stats.mem = mem.stats();
        timings.sort_by_key(|x| x.seq);
        RunResult {
            halted,
            cycles: t,
            regs: committed_regs,
            mem: mem.snapshot().to_vec(),
            stats,
            timings,
        }
    }
}

/// Helper mirroring `Instr::reads` indices for rename capture (kept for
/// potential external use).
#[allow(dead_code)]
fn read_regs(i: &Instr) -> [Option<Reg>; 2] {
    i.reads()
}
