//! The unified Ultrascalar engine: US-I (`C = 1`), US-II (`C = n`) and
//! the hybrid (`1 < C < n`) as one cycle-accurate model.
//!
//! See the crate docs for the cycle conventions. The per-cycle work —
//! one program-order scan maintaining running AND flags ("all earlier
//! finished / stored / loaded / confirmed") and a last-writer-per-
//! register map — is exactly the computation the hardware's CSPP
//! circuits perform in `Θ(log n)` gate delay; the simulator does it in
//! `O(n + L)` serial work per cycle.
//!
//! Three of the paper's extension mechanisms are implemented behind
//! configuration switches (all off by default):
//!
//! * **shared ALUs** (`ProcConfig::alus`): the Memo 2 prioritised
//!   prefix scheduler — at most `k` `Alu`/`AluImm` instructions hold a
//!   functional unit at once, granted oldest-first (§1, §7);
//! * **memory renaming** (`ProcConfig::memory_renaming`): loads
//!   forward from the nearest older in-window store to the same
//!   address and bypass the conservative serialisation once all older
//!   store addresses are known to differ (§7);
//! * **pipelined forwarding** (`ProcConfig::forward`): result delivery
//!   costs extra cycles proportional to the H-tree distance between
//!   producer and consumer stations (§7's pipelining/self-timing
//!   study).

// Index-based window loops are deliberate throughout: entries are
// mutated mid-scan, which iterator borrows cannot express.
#![allow(clippy::needless_range_loop)]

use std::collections::VecDeque;

use crate::config::{ForwardModel, ProcConfig};
use crate::fetch::{FetchUnit, TraceCache};
use crate::processor::{Processor, RunResult};
use crate::station::{
    mask_intersection, MemPhase, RegMask, StationEntry, MAX_PACKED_REGS, REG_LANE_WORDS,
};
use crate::stats::ProcStats;
use crate::timing::InstrTiming;
use ultrascalar_isa::{Instr, Program};
use ultrascalar_memsys::{MemRequest, MemResponse, MemSystem, ReqKind};
use ultrascalar_prefix::packed::{hop_band_count, hop_level, HopBands};
/// Fuel given to the golden interpreter when pre-computing the perfect
/// fetch path. Far beyond any workload in this repository.
const ORACLE_FUEL: usize = 50_000_000;

// Lane assignments of the packed all-earlier flag word: the paper's
// side-by-side 1-bit AND networks (Figure 5, plus the renaming
// variant) kept as bits of one `u64` and narrowed word-parallel, the
// software mirror of `ultrascalar_prefix::packed::AndWords` lanes.
const F_STORES_DONE: u64 = 1 << 0;
const F_LOADS_DONE: u64 = 1 << 1;
const F_BRANCHES_DONE: u64 = 1 << 2;
const F_STORES_RESOLVED: u64 = 1 << 3;
/// Lanes gating a store issue: every older store, load and branch done.
const F_STORE_ISSUE: u64 = F_STORES_DONE | F_LOADS_DONE | F_BRANCHES_DONE;

/// A cluster of up to `C` stations. In hardware every cluster always
/// has `C` stations; here `entries` holds only the occupied ones (all
/// clusters except possibly the youngest are full).
#[derive(Debug, Clone)]
struct Cluster {
    /// Monotone allocation index; `index % K` is the physical position
    /// in the cluster ring (fat-tree placement).
    ring_index: usize,
    entries: Vec<StationEntry>,
}

/// Reusable per-cycle scratch for the program-order scan. Hoisting
/// these buffers out of the cycle loop makes the steady-state scan
/// allocation-free: each cycle clears them in place instead of
/// re-allocating (`last_writer` used to be a fresh `vec![None; regs]`
/// and the locator a fresh `HashMap` every cycle).
#[derive(Debug, Default)]
struct ScanScratch {
    /// Most recent preceding writer per architectural register.
    last_writer: Vec<Option<Writer>>,
    /// Distance-0 readiness base of register `r`'s most recent
    /// preceding writer (packed-flags fast path): `0` when the register
    /// reads from the committed file, `completion + 1` for an in-window
    /// writer, `u64::MAX` for a writer with no scheduled completion. A
    /// consumer's actual readiness is this base plus the hop-distance
    /// forwarding cost (zero under single-cycle forwarding). Paired
    /// with the scan's readiness bands, it lets a blocked station's
    /// wake-up event be read off directly instead of re-resolving its
    /// operands.
    writer_ready_at: Vec<u64>,
    /// Window ring position of register `r`'s most recent preceding
    /// writer (packed fast path under pipelined forwarding): feeds the
    /// per-consumer hop-distance band refinement and the banded
    /// `ready_at` extraction in the snapshot resolve. Live only where
    /// the per-cycle has-writer / band lanes are raised, so it needs no
    /// per-cycle clear.
    writer_pos: Vec<usize>,
    /// Hop-distance readiness bands: band `d` holds the registers whose
    /// most recent preceding writer's value is not yet visible `d`
    /// H-tree levels away. Exactly one band under single-cycle
    /// forwarding (the original position-independent unready word);
    /// `log2(window)+1` nested bands under pipelined forwarding, the
    /// widest gating the one word-array blocked test. Cleared
    /// word-parallel each cycle and rebuilt by the scan.
    bands: HopBands<REG_LANE_WORDS>,
    /// Packed register snapshot, value lane (packed-values fast path):
    /// the most recent preceding writer's value per register. Together
    /// with `writer_seq` and `writer_ready_at` this is the
    /// struct-of-arrays form of `last_writer` — the engine-side
    /// counterpart of the bit-sliced value CSPP
    /// (`ultrascalar_prefix::sliced`), maintained incrementally by the
    /// scan instead of re-swept per cycle. Entries are live only where
    /// the per-cycle has-writer lane word has the register's bit
    /// raised, so the snapshot needs **no** per-cycle clear: the
    /// word-parallel has-writer reset (four words) replaces the
    /// `O(num_regs)` scalar-map fill.
    writer_value: Vec<u32>,
    /// Packed register snapshot, sequence lane: the writer's `seq`,
    /// for forwarding-distance accounting.
    writer_seq: Vec<u64>,
    /// Resolved state of each older store, in program order (memory
    /// renaming only).
    store_infos: Vec<StoreInfo>,
    /// Memory requests offered to the arbiter this cycle.
    requests: Vec<MemRequest>,
}

impl ScanScratch {
    /// Size the per-register tables for a program's register file and
    /// empty everything, reusing retained capacity (allocation-free
    /// whenever the file is no wider than any previously prepared one).
    fn prepare(&mut self, num_regs: usize, num_bands: usize) {
        self.last_writer.clear();
        self.last_writer.resize(num_regs, None);
        self.writer_ready_at.clear();
        self.writer_ready_at.resize(num_regs, 0);
        self.writer_pos.clear();
        self.writer_pos.resize(num_regs, 0);
        self.bands.prepare(num_bands);
        self.writer_value.clear();
        self.writer_value.resize(num_regs, 0);
        self.writer_seq.clear();
        self.writer_seq.resize(num_regs, 0);
        self.store_infos.clear();
        self.requests.clear();
    }

    /// Reset for a new cycle without releasing capacity. Under the
    /// packed-values snapshot the per-register tables are *not* swept:
    /// every slot the cycle reads is gated by a has-writer (or
    /// unready) lane bit that is rebuilt from zero each cycle, so
    /// stale slots are unreachable and the whole reset is the word-
    /// parallel lane-word clear in the scan loop.
    fn reset(&mut self, packed_values: bool) {
        if !packed_values {
            self.last_writer.fill(None);
            self.writer_ready_at.fill(0);
        }
        // The readiness bands are rebuilt from zero every cycle — the
        // word-parallel clear here is the whole reset the banded gate
        // needs (the base/position tables are read only at raised
        // lanes).
        self.bands.clear();
        self.store_infos.clear();
        self.requests.clear();
    }
}

/// Locate the window entry with sequence number `id`, replacing the
/// per-cycle `HashMap` locator with an allocation-free binary search.
///
/// Sequence numbers are allocated monotonically and never reused, and
/// both refill (push youngest) and flush (truncate a suffix) preserve
/// program order, so the window is always globally sorted ascending by
/// `seq` — clusters first by their last entry, then entries within the
/// cluster. Note the ranges are *not* contiguous (a misprediction flush
/// followed by refill leaves seq gaps even inside one cluster), so
/// `seq - base` arithmetic would be unsound; search is required.
fn locate(window: &VecDeque<Cluster>, id: u64) -> Option<(usize, usize)> {
    let ci = window.partition_point(|cl| cl.entries.last().is_none_or(|e| e.seq < id));
    let cl = window.get(ci)?;
    let ei = cl.entries.binary_search_by_key(&id, |e| e.seq).ok()?;
    Some((ci, ei))
}

/// Snapshot of the most recent preceding writer of a register during
/// the program-order scan.
#[derive(Debug, Clone, Copy)]
struct Writer {
    seq: u64,
    completed_at: Option<u64>,
    value: u32,
    /// Window ring position of the writer (for distance-based
    /// forwarding latency).
    pos: usize,
}

/// The resolved value of one source operand.
enum Source {
    /// From an in-window producer (`dist` = seq distance).
    Forwarded {
        value: u32,
        ready: bool,
        /// First cycle at which the forwarded value is usable
        /// (producer completion plus forwarding latency), if the
        /// producer has a scheduled completion. Feeds the event-driven
        /// cycle skip: an unready source with a known `ready_at` is a
        /// future event the engine may jump to.
        ready_at: Option<u64>,
        dist: u64,
    },
    /// From the committed register file (always ready).
    Committed { value: u32 },
}

impl Source {
    fn ready(&self) -> bool {
        match self {
            Source::Forwarded { ready, .. } => *ready,
            Source::Committed { .. } => true,
        }
    }
    fn value(&self) -> u32 {
        match self {
            Source::Forwarded { value, .. } | Source::Committed { value } => *value,
        }
    }
}

/// Resolved state of an older store, tracked during the scan for
/// memory renaming.
#[derive(Debug, Clone, Copy)]
struct StoreInfo {
    /// Are the store's address and data known (operands ready)?
    resolved: bool,
    addr: usize,
    value: u32,
}

/// One misprediction flush, as seen by the lane batcher: the committed
/// flusher's sequence number and the contiguous run of flushed
/// (wrong-path) entries it squashed, recorded oldest-first.
#[derive(Debug, Clone, Copy)]
pub struct FlushEvent {
    /// `seq` of the mispredicted branch that caused the flush.
    pub branch_seq: u64,
    /// Index of this event's first entry in [`ReplayLog::entries`].
    pub start: usize,
    /// Number of flushed entries (always ≥ 1; flushes that squash
    /// nothing leave no wrong-path trace and are not recorded).
    pub len: usize,
}

/// One squashed wrong-path station, with exactly the value-dependent
/// facts that shaped the schedule: the branch direction if it resolved
/// early enough to train the predictor, and the effective address if
/// the memory operation got far enough to compute one. Entries that
/// resolved neither provably left no timing trace (their consumers
/// never issued), so their values are don't-cares during replay.
#[derive(Debug, Clone, Copy)]
pub struct FlushedEntry {
    /// Dynamic sequence number of the squashed station.
    pub seq: u64,
    /// Static instruction index (`>= program.len()` marks a synthetic
    /// halt fetched past the end of the program).
    pub pc: usize,
    /// The squashed instruction.
    pub instr: Instr,
    /// `Some(direction)` iff the branch completed strictly before the
    /// flush cycle — exactly the condition under which Phase C trained
    /// the predictor on it.
    pub resolved_taken: Option<bool>,
    /// Effective address, if the load/store computed one.
    pub mem_addr: Option<usize>,
}

/// Wrong-path trace of a run: every misprediction flush with its
/// squashed entries, in flush order. Maintained unconditionally (the
/// cost is a few pushes per flush), consumed by the lane batcher's
/// epoch-segmented replay; cleared at the top of every run.
#[derive(Debug, Default)]
pub struct ReplayLog {
    /// Flush events, in flush (time) order.
    pub events: Vec<FlushEvent>,
    /// Flushed entries, grouped by event (see [`FlushEvent::start`]).
    pub entries: Vec<FlushedEntry>,
}

impl ReplayLog {
    fn clear(&mut self) {
        self.events.clear();
        self.entries.clear();
    }

    /// The entries squashed by one flush event.
    pub fn flushed(&self, ev: &FlushEvent) -> &[FlushedEntry] {
        &self.entries[ev.start..ev.start + ev.len]
    }

    fn push_entry(&mut self, e: &StationEntry, t_flush: u64) {
        self.entries.push(FlushedEntry {
            seq: e.seq,
            pc: e.pc,
            instr: e.instr,
            resolved_taken: e
                .taken
                .filter(|_| e.completed_at.is_some_and(|ct| ct < t_flush)),
            mem_addr: e.mem_addr,
        });
    }
}

/// Wake-up collection for the packed-gate fast path: `blocked` is the
/// non-empty intersection of a station's source mask with the scan's
/// register-unready lane words. Under single-cycle forwarding a blocked
/// source becomes usable exactly one cycle after its writer completes,
/// so the readiness time is read straight off the per-register table
/// without building a [`Source`] (`u64::MAX` entries — writers with no
/// scheduled completion — contribute no bound). Only the first `words`
/// lane words can hold raised bits (the caller's intersection is
/// truncated to the program's live register prefix).
///
/// Returns the **max** of the blocking sources' known readiness times
/// (0 when none is scheduled): the station issues only when *all*
/// sources are ready, so the max of the known ones is a lower bound on
/// its issue cycle — both the wake-up event the cycle skip may jump to
/// and the bound cached in [`StationEntry::not_before`].
#[inline(always)]
fn packed_wakeups(blocked: &RegMask, words: usize, ready_at: &[u64], t: u64) -> u64 {
    let mut bound = 0u64;
    for (j, &word) in blocked.iter().take(words).enumerate() {
        let mut w = word;
        while w != 0 {
            let r = j * 64 + w.trailing_zeros() as usize;
            w &= w - 1;
            let ra = ready_at[r];
            if ra > t && ra != u64::MAX {
                bound = bound.max(ra);
            }
        }
    }
    bound
}

/// Per-lane refinement of a top-band hit under pipelined forwarding:
/// for each raised source lane, test the band at the *actual*
/// producer→consumer hop distance (one bit probe; the bands nest, so
/// the top-band intersection over-approximates). Returns whether any
/// source truly blocks at its distance, plus the **max** of the truly
/// blocking sources' known readiness times (0 when none is scheduled)
/// — the issue-cycle lower bound cached in
/// [`StationEntry::not_before`]. A hit that refines to "ready at every
/// actual distance" lets the caller fall through to issue.
// Hot-path helper: the arguments are disjoint borrows of scan scratch
// that a bundling struct would force into one, fighting the borrow
// checker at every call site.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn banded_blocked(
    blocked: &RegMask,
    words: usize,
    bands: &HopBands<REG_LANE_WORDS>,
    ready_at: &[u64],
    writer_pos: &[usize],
    pos: usize,
    per_hop: u64,
    t: u64,
) -> (bool, u64) {
    let mut any = false;
    let mut bound = 0u64;
    for (j, &word) in blocked.iter().take(words).enumerate() {
        let mut w = word;
        while w != 0 {
            let r = j * 64 + w.trailing_zeros() as usize;
            w &= w - 1;
            let lvl = hop_level(writer_pos[r], pos);
            if !bands.test(lvl, r) {
                continue; // ready at this consumer's distance
            }
            any = true;
            let ra = ready_at[r].saturating_add(ForwardModel::extra_at(per_hop, lvl));
            if ra > t && ra != u64::MAX {
                bound = bound.max(ra);
            }
        }
    }
    (any, bound)
}

/// The unified Ultrascalar processor model.
///
/// The engine retains its allocation-heavy working state — fetch unit,
/// memory system, window clusters, scan buffers, trace cache — across
/// runs. [`Processor::run_reusing`] rewinds all of it in place, so a
/// warm engine serving its second and later requests for a same-shape
/// program performs **zero** allocations (the serve-mode probe pins
/// this); [`Processor::run`] produces identical results and merely
/// pays for a fresh [`RunResult`]. Retention is invisible to results:
/// the reuse-equivalence tests pin a warm engine cycle-exact against a
/// freshly constructed one.
#[derive(Debug)]
pub struct Ultrascalar {
    cfg: ProcConfig,
    scratch: EngineScratch,
}

/// Working state retained across runs. Everything here is rewound (not
/// rebuilt) at the top of each run; the cluster pool recycles the
/// per-cluster entry vectors that commit and flush would otherwise
/// drop, closing the last per-cycle allocation in the refill path.
#[derive(Debug, Default)]
struct EngineScratch {
    fetch: Option<FetchUnit>,
    mem: Option<MemSystem>,
    trace_cache: Option<TraceCache>,
    window: VecDeque<Cluster>,
    /// Free list of cluster entry vectors (always pushed cleared).
    cluster_pool: Vec<Vec<StationEntry>>,
    scan: ScanScratch,
    /// Wrong-path trace of the most recent run (see [`ReplayLog`]).
    replay: ReplayLog,
    alu_free_at: Vec<u64>,
    /// Caller-side buffers for [`MemSystem::tick_into`].
    accepted: Vec<u64>,
    responses: Vec<MemResponse>,
}

impl Ultrascalar {
    /// Create a processor with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ProcConfig) -> Self {
        cfg.validate().expect("invalid processor configuration");
        Ultrascalar {
            cfg,
            scratch: EngineScratch::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ProcConfig {
        &self.cfg
    }

    /// The wrong-path trace of the most recent run: every misprediction
    /// flush with its squashed entries, in flush order.
    pub fn replay_log(&self) -> &ReplayLog {
        &self.scratch.replay
    }
}

impl Clone for Ultrascalar {
    /// Clones the configuration only: the clone starts cold, with no
    /// retained working state (warm buffers are an optimisation, never
    /// part of an engine's observable identity).
    fn clone(&self) -> Self {
        Ultrascalar::new(self.cfg.clone())
    }
}

impl Processor for Ultrascalar {
    fn name(&self) -> String {
        let n = self.cfg.window;
        let c = self.cfg.cluster;
        if c == 1 {
            format!("ultrascalar-i(n={n})")
        } else if c == n {
            format!("ultrascalar-ii(n={n})")
        } else {
            format!("hybrid(n={n},C={c})")
        }
    }

    fn run(&mut self, program: &Program) -> RunResult {
        let mut out = RunResult::default();
        self.run_reusing(program, &mut out);
        out
    }

    fn reset(&mut self) {
        self.scratch = EngineScratch::default();
    }

    fn run_reusing(&mut self, program: &Program, out: &mut RunResult) {
        program.validate().expect("program must validate");
        // Pin the portable SWAR substrate for the whole run when the
        // config asks for it (RAII: dispatch is restored on every exit
        // path). The toggle is process-global, but dispatch never
        // changes an observable result — concurrent runs under mixed
        // settings only vary which bit-identical kernel executes.
        let _swar_guard = self
            .cfg
            .force_swar
            .then(ultrascalar_prefix::ForceSwarGuard::force);
        let n = self.cfg.window;
        let c = self.cfg.cluster;
        let k = n / c;
        let lat = self.cfg.latency;
        let fwd = self.cfg.forward;
        let renaming = self.cfg.memory_renaming;
        // The packed readiness fast path covers both forwarding
        // models: single-cycle forwarding keeps one reader-independent
        // unready word, pipelined forwarding keeps one nested band per
        // H-tree hop level so distance-dependent readiness is still a
        // word-array test. The lanes live in `REG_LANE_WORDS` words,
        // covering every register file the ISA can express
        // (`num_regs <= 256`); the width check — the only remaining
        // fallback — is a safeguard against the ISA widening without
        // this path.
        let packed_ok = program.num_regs <= MAX_PACKED_REGS;
        // Shape gate: the packed path only runs where the step_ab A/B
        // data says it wins (see `ProcConfig::packed_shape_wins`);
        // `packed_override` punches through for A/B harnesses and
        // differential tests. The decision is recorded in
        // `ProcStats::packed_shape_gated` below.
        let shape_ok = self.cfg.packed_override || self.cfg.packed_shape_wins();
        let packed = self.cfg.packed_flags && packed_ok && shape_ok;
        // Value forwarding rides on the flag networks: it needs the
        // unready-mask gate (so blocked stations never read the
        // snapshot) and the readiness table the gate maintains.
        let packed_vals = packed && self.cfg.packed_values;
        // Live prefix of the lane words for this program's register
        // file: the mask tests never touch words no register can reach.
        let lane_words = program.num_regs.div_ceil(64).min(REG_LANE_WORDS);
        // Pipelined forwarding inside the packed path: the per-hop
        // cost, and the number of hop-distance readiness bands — one
        // under single-cycle forwarding (the plain unready word),
        // `log2(window)+1` under pipelined forwarding (window ring
        // positions span `0..n`).
        let pipelined = match fwd {
            ForwardModel::SingleCycle => None,
            ForwardModel::Pipelined { per_hop } => Some(per_hop),
        };
        let num_bands = if pipelined.is_some() {
            hop_band_count(n)
        } else {
            1
        };
        // Loop invariants of the per-writer band update: the per-level
        // readiness step and the total distance-0→top-band extra. A
        // writer whose base horizon plus `top_extra` has passed is
        // ready at *every* distance and usually needs no column write
        // at all (the bands start each scan pass cleared).
        let hop_step = pipelined.map_or(0, |ph| ph.saturating_mul(2));
        let top_extra = hop_step.saturating_mul(num_bands as u64 - 1);

        // Rewind the retained working state in place. The engine's
        // configuration is fixed at construction, so each component's
        // shape (predictor kind, memory config, trace-cache geometry,
        // ALU pool size) never changes between runs — reset, not
        // rebuild, except on the very first run.
        let EngineScratch {
            fetch,
            mem,
            trace_cache,
            window,
            cluster_pool,
            scan,
            replay,
            alu_free_at,
            accepted,
            responses,
        } = &mut self.scratch;
        replay.clear();
        match fetch {
            Some(f) => f.reset(program, self.cfg.predictor, ORACLE_FUEL),
            None => *fetch = Some(FetchUnit::new(program, self.cfg.predictor, ORACLE_FUEL)),
        }
        let fetch = fetch.as_mut().expect("fetch unit initialised above");
        match mem {
            Some(m) => m.reset(&program.init_mem),
            None => *mem = Some(MemSystem::new(self.cfg.mem.clone(), &program.init_mem)),
        }
        let mem = mem.as_mut().expect("memory system initialised above");
        // A previous run that hit the cycle budget leaves clusters in
        // the window; recycle them.
        while let Some(mut cl) = window.pop_front() {
            cl.entries.clear();
            cluster_pool.push(cl.entries);
        }
        let mut next_seq: u64 = 0;
        let mut alloc_counter: usize = 0;

        // The caller's result buffer is the working state: committed
        // registers and timings accumulate directly into `out`, so
        // finishing a run writes nothing it would have to copy.
        let RunResult {
            halted: out_halted,
            cycles: out_cycles,
            regs: committed_regs,
            mem: out_mem,
            stats,
            timings,
        } = out;
        stats.reset();
        timings.clear();
        committed_regs.clone_from(&program.init_regs);
        if self.cfg.packed_flags && !packed_ok {
            // Visible diagnostic instead of a silent downgrade: the
            // run asked for the packed fast path but the gate kept the
            // scalar scan (a register file wider than the packed lane
            // words — pipelined forwarding now rides the banded path).
            stats.packed_fallbacks += 1;
        }
        if self.cfg.packed_flags && packed_ok && !shape_ok {
            // Deliberate policy decision, distinct from the width
            // fallback above: this shape measures as a net loss for
            // the packed path, so the scalar scan runs instead.
            stats.packed_shape_gated += 1;
        }
        let mut halted = false;
        // Shared-ALU pool: first cycle each unit is free again.
        alu_free_at.clear();
        if let Some(pool) = self.cfg.alus {
            alu_free_at.resize(pool, 0u64);
        }
        // Trace-cache fetch model: redirects to uncached trace heads
        // stall refill.
        let mut trace_cache = match self.cfg.trace_cache {
            Some((entries, penalty)) => {
                match trace_cache {
                    Some(tc) => tc.reset(),
                    None => *trace_cache = Some(TraceCache::new(entries, penalty)),
                }
                trace_cache.as_mut()
            }
            None => None,
        };
        let mut fetch_stalled_until: u64 = 0;

        // Refill: fill the youngest partial cluster, then allocate new
        // clusters, stations becoming live at `visible_at`; at most
        // `fetch_width` instructions per cycle.
        let fetch_budget = self.cfg.fetch_width.unwrap_or(n);
        let refill = |window: &mut VecDeque<Cluster>,
                      fetch: &mut FetchUnit,
                      next_seq: &mut u64,
                      alloc_counter: &mut usize,
                      pool: &mut Vec<Vec<StationEntry>>,
                      visible_at: u64| {
            let mut budget = fetch_budget;
            let pull = |fetch: &mut FetchUnit,
                        seq: &mut u64,
                        budget: &mut usize|
             -> Option<StationEntry> {
                if *budget == 0 {
                    return None;
                }
                let f = fetch.next()?;
                let e = StationEntry::new(*seq, f.pc, f.instr, f.predicted_next, visible_at);
                *seq += 1;
                *budget -= 1;
                Some(e)
            };
            if let Some(back) = window.back_mut() {
                while back.entries.len() < c {
                    match pull(fetch, next_seq, &mut budget) {
                        Some(e) => back.entries.push(e),
                        None => return,
                    }
                }
            }
            while window.len() < k {
                // Recycle an entry vector dropped by commit or flush;
                // pool vectors are always pushed cleared.
                let mut entries = pool.pop().unwrap_or_default();
                entries.reserve(c);
                while entries.len() < c {
                    match pull(fetch, next_seq, &mut budget) {
                        Some(e) => entries.push(e),
                        None => break,
                    }
                }
                if entries.is_empty() {
                    pool.push(entries);
                    return;
                }
                window.push_back(Cluster {
                    ring_index: *alloc_counter,
                    entries,
                });
                *alloc_counter += 1;
            }
        };

        // Initial fill: the window starts filling at cycle 0.
        refill(
            window,
            fetch,
            &mut next_seq,
            &mut alloc_counter,
            cluster_pool,
            0,
        );

        // Per-cycle scan buffers, reused across the whole run.
        scan.prepare(program.num_regs, num_bands);

        // Commit epoch for the per-entry `not_before` cache: cached
        // issue bounds are conditioned on producers forwarding
        // in-window, and an in-order commit publishes the committed
        // register file (readable from commit+2, possibly before the
        // forwarding horizon), so every commit invalidates all bounds.
        let mut commit_epoch: u64 = 1;
        let mut t: u64 = 0;
        while t < self.cfg.max_cycles {
            if window.is_empty() && fetch.exhausted() {
                // Nothing in flight and nothing left to fetch.
                break;
            }
            let occupancy: u64 = window.iter().map(|cl| cl.entries.len() as u64).sum();
            stats.occupancy_sum += occupancy;

            // Event-driven cycle skipping: while the cycle executes we
            // collect the earliest future event (a completion, a
            // forwarded operand becoming usable) and enough evidence to
            // decide afterwards whether the cycle was silent — i.e.
            // whether fast-forwarding to that event is observationally
            // exact.
            let mut next_completion = u64::MAX;
            let mut next_source_ready = u64::MAX;
            let mut completes_now = false;
            let alu_stalls_before = stats.alu_stalls;

            // ---- Phase A: program-order scan; issue & collect memory
            // requests. Prefix flags mirror the CSPP circuits, computed
            // on start-of-cycle state; the four all-earlier AND
            // networks live side by side as lanes of one packed word,
            // narrowed in place as the scan passes each station.
            let mut flags: u64 = F_STORES_DONE | F_LOADS_DONE | F_BRANCHES_DONE | F_STORES_RESOLVED;
            // Register-readiness band words (`scan.bands`): band lane
            // `r` is raised while the most recent preceding writer of
            // register `r` has not produced a value usable at that hop
            // distance this cycle — the software form of the
            // per-register ready-bit CSPP lanes (paper Figure 4), 64
            // registers per word across `REG_LANE_WORDS` words, so a
            // blocked reader is detected by one word-array mask test
            // against the widest band (plus, under pipelined
            // forwarding, a per-lane probe of the band at the actual
            // hop distance).
            //
            // Has-writer lane words: lane `r` is raised once the scan
            // has passed a writer of register `r` this cycle. Rebuilt
            // from zero every cycle, this is the only per-cycle reset
            // the packed-values snapshot needs (the value/seq/readiness
            // tables are read exclusively at raised lanes).
            let mut has_writer: RegMask = [0; REG_LANE_WORDS];
            scan.reset(packed_vals);
            let ScanScratch {
                last_writer,
                writer_ready_at,
                writer_pos,
                bands,
                writer_value,
                writer_seq,
                store_infos,
                requests,
            } = &mut *scan;
            let mut free_alus = alu_free_at.iter().filter(|&&f| f <= t).count();

            for ci in 0..window.len() {
                for ei in 0..window[ci].entries.len() {
                    let pos = (window[ci].ring_index % k) * c + ei;
                    let entry = &window[ci].entries[ei];

                    // Resolve this entry's sources from the scan state,
                    // applying the forwarding-latency model.
                    let seq = entry.seq;
                    let resolve = |r: ultrascalar_isa::Reg| -> Source {
                        let i = r.index();
                        if packed_vals {
                            // Snapshot resolve: a lane extraction from
                            // the packed register snapshot instead of a
                            // per-register match. Readiness comes off
                            // the same base table the band gate
                            // maintains; pipelined forwarding layers
                            // the consumer's hop-distance cost on top
                            // (the banded `ready_at` extraction).
                            return if has_writer[i / 64] >> (i % 64) & 1 == 1 {
                                let base = writer_ready_at[i];
                                let ra = match pipelined {
                                    None => base,
                                    Some(ph) => base.saturating_add(ForwardModel::extra_at(
                                        ph,
                                        hop_level(writer_pos[i], pos),
                                    )),
                                };
                                Source::Forwarded {
                                    value: writer_value[i],
                                    ready: ra <= t,
                                    ready_at: (ra != u64::MAX).then_some(ra),
                                    dist: seq - writer_seq[i],
                                }
                            } else {
                                Source::Committed {
                                    value: committed_regs[i],
                                }
                            };
                        }
                        match last_writer[i] {
                            Some(w) => {
                                // `done + 1` first, then the saturating
                                // hop cost — the same composition as
                                // the packed base table, so the two
                                // resolve paths agree even where
                                // `extra` saturates.
                                let ready_at = w
                                    .completed_at
                                    .map(|done| (done + 1).saturating_add(fwd.extra(w.pos, pos)));
                                Source::Forwarded {
                                    value: w.value,
                                    ready: ready_at.is_some_and(|ra| ra <= t),
                                    ready_at,
                                    dist: seq - w.seq,
                                }
                            }
                            None => Source::Committed {
                                value: committed_regs[i],
                            },
                        }
                    };

                    let eligible = entry.issued_at.is_none() && t >= entry.fetched_at;
                    // A memory op may spend several cycles re-offering a
                    // rejected request; record its forwardings only on
                    // the first attempt.
                    let first_attempt = entry.mem == MemPhase::None;
                    let mut issued_alu_class = false;
                    // Cached issue bound: while no commit has
                    // intervened and the bound is still in the future,
                    // the entry provably cannot issue — skip the gate
                    // and operand resolution outright and keep the
                    // bound as this entry's wake-up event.
                    let cached_blocked =
                        packed && entry.nb_epoch == commit_epoch && entry.not_before > t;
                    if cached_blocked {
                        next_source_ready = next_source_ready.min(entry.not_before);
                    }
                    if eligible && !cached_blocked {
                        // Packed fast gate: a station is blocked only if
                        // its decode-time source mask intersects the
                        // widest readiness band — one word-array test
                        // (vector on AVX2 hosts) replaces the full
                        // operand resolution, which then runs only for
                        // stations that can actually issue. Under
                        // pipelined forwarding a top-band hit is
                        // refined per raised lane against the band at
                        // the actual producer→consumer hop distance
                        // (the bands nest, so a top-band miss is an
                        // exact all-distances-ready answer).
                        let gate_blocked = packed && bands.intersects(&entry.src_mask) && {
                            let blocked =
                                mask_intersection(bands.top(), &entry.src_mask, lane_words);
                            let (truly, bound) = match pipelined {
                                None => (
                                    true,
                                    packed_wakeups(&blocked, lane_words, writer_ready_at, t),
                                ),
                                Some(per_hop) => banded_blocked(
                                    &blocked,
                                    lane_words,
                                    bands,
                                    writer_ready_at,
                                    writer_pos,
                                    pos,
                                    per_hop,
                                    t,
                                ),
                            };
                            if truly && bound > t {
                                next_source_ready = next_source_ready.min(bound);
                                let e = &mut window[ci].entries[ei];
                                e.not_before = bound;
                                e.nb_epoch = commit_epoch;
                            }
                            truly
                        };
                        if !gate_blocked {
                            let entry = &window[ci].entries[ei];
                            let srcs = entry.instr.reads();
                            let s0 = srcs[0].map(&resolve);
                            let s1 = srcs[1].map(&resolve);
                            let ready = s0.as_ref().is_none_or(Source::ready)
                                && s1.as_ref().is_none_or(Source::ready);
                            if ready {
                                let record_fw = |stats: &mut ProcStats, s: &Option<Source>| match s
                                {
                                    Some(Source::Forwarded { dist, .. }) => {
                                        stats.record_forward(*dist)
                                    }
                                    Some(Source::Committed { .. }) => stats.regfile_reads += 1,
                                    None => {}
                                };
                                let instr = entry.instr;
                                match instr {
                                    Instr::Alu { op, .. } => {
                                        if self.cfg.alus.is_none() || free_alus > 0 {
                                            if self.cfg.alus.is_some() {
                                                free_alus -= 1;
                                                issued_alu_class = true;
                                            }
                                            let v = op.apply(
                                                s0.as_ref().expect("alu rs1").value(),
                                                s1.as_ref().expect("alu rs2").value(),
                                            );
                                            let e = &mut window[ci].entries[ei];
                                            e.issued_at = Some(t);
                                            e.completed_at = Some(t + lat.of(&instr) - 1);
                                            e.result = Some(v);
                                            e.actual_next = Some(e.pc + 1);
                                            record_fw(stats, &s0);
                                            record_fw(stats, &s1);
                                        } else {
                                            stats.alu_stalls += 1;
                                        }
                                    }
                                    Instr::AluImm { op, imm, .. } => {
                                        if self.cfg.alus.is_none() || free_alus > 0 {
                                            if self.cfg.alus.is_some() {
                                                free_alus -= 1;
                                                issued_alu_class = true;
                                            }
                                            let v = op.apply(
                                                s0.as_ref().expect("alui rs1").value(),
                                                imm as u32,
                                            );
                                            let e = &mut window[ci].entries[ei];
                                            e.issued_at = Some(t);
                                            e.completed_at = Some(t + lat.of(&instr) - 1);
                                            e.result = Some(v);
                                            e.actual_next = Some(e.pc + 1);
                                            record_fw(stats, &s0);
                                        } else {
                                            stats.alu_stalls += 1;
                                        }
                                    }
                                    Instr::LoadImm { imm, .. } => {
                                        let e = &mut window[ci].entries[ei];
                                        e.issued_at = Some(t);
                                        e.completed_at = Some(t + lat.of(&instr) - 1);
                                        e.result = Some(imm as u32);
                                        e.actual_next = Some(e.pc + 1);
                                    }
                                    Instr::Branch { cond, target, .. } => {
                                        let a = s0.as_ref().expect("branch rs1").value();
                                        let b = s1.as_ref().expect("branch rs2").value();
                                        let taken = cond.eval(a, b);
                                        let e = &mut window[ci].entries[ei];
                                        e.issued_at = Some(t);
                                        e.completed_at = Some(t + lat.of(&instr) - 1);
                                        e.taken = Some(taken);
                                        e.actual_next =
                                            Some(if taken { target as usize } else { e.pc + 1 });
                                        record_fw(stats, &s0);
                                        record_fw(stats, &s1);
                                    }
                                    Instr::Jump { target } => {
                                        let e = &mut window[ci].entries[ei];
                                        e.issued_at = Some(t);
                                        e.completed_at = Some(t);
                                        e.actual_next = Some(target as usize);
                                    }
                                    Instr::Halt | Instr::Nop => {
                                        let e = &mut window[ci].entries[ei];
                                        e.issued_at = Some(t);
                                        e.completed_at = Some(t);
                                        e.actual_next = Some(e.pc + 1);
                                    }
                                    Instr::Load { offset, .. } => {
                                        let base = s0.as_ref().expect("load base").value();
                                        let addr = (base.wrapping_add(offset as u32) as usize)
                                            % mem.words();
                                        if renaming {
                                            // Memory renaming: once every
                                            // older store's address is
                                            // known, either forward from
                                            // the nearest match or go to
                                            // memory immediately.
                                            if flags & F_STORES_RESOLVED != 0 {
                                                let hit = store_infos
                                                    .iter()
                                                    .rev()
                                                    .find(|s| s.addr == addr);
                                                if let Some(s) = hit {
                                                    let v = s.value;
                                                    let e = &mut window[ci].entries[ei];
                                                    e.issued_at = Some(t);
                                                    e.completed_at = Some(t);
                                                    e.result = Some(v);
                                                    e.actual_next = Some(e.pc + 1);
                                                    e.mem_addr = Some(addr);
                                                    stats.store_forwards += 1;
                                                    record_fw(stats, &s0);
                                                } else {
                                                    requests.push(MemRequest {
                                                        id: seq,
                                                        leaf: pos,
                                                        addr,
                                                        kind: ReqKind::Load,
                                                    });
                                                    let e = &mut window[ci].entries[ei];
                                                    e.mem = MemPhase::Requesting;
                                                    e.mem_addr = Some(addr);
                                                    if first_attempt {
                                                        record_fw(stats, &s0);
                                                    }
                                                }
                                            }
                                        } else if flags & F_STORES_DONE != 0 {
                                            requests.push(MemRequest {
                                                id: seq,
                                                leaf: pos,
                                                addr,
                                                kind: ReqKind::Load,
                                            });
                                            let e = &mut window[ci].entries[ei];
                                            e.mem = MemPhase::Requesting;
                                            e.mem_addr = Some(addr);
                                            if first_attempt {
                                                record_fw(stats, &s0);
                                            }
                                        }
                                    }
                                    Instr::Store { offset, .. } => {
                                        if flags & F_STORE_ISSUE == F_STORE_ISSUE {
                                            let base = s0.as_ref().expect("store base").value();
                                            let val = s1.as_ref().expect("store src").value();
                                            let addr = (base.wrapping_add(offset as u32) as usize)
                                                % mem.words();
                                            requests.push(MemRequest {
                                                id: seq,
                                                leaf: pos,
                                                addr,
                                                kind: ReqKind::Store(val),
                                            });
                                            let e = &mut window[ci].entries[ei];
                                            e.mem = MemPhase::Requesting;
                                            e.mem_addr = Some(addr);
                                            if first_attempt {
                                                record_fw(stats, &s0);
                                                record_fw(stats, &s1);
                                            }
                                        }
                                    }
                                }
                            } else {
                                // Blocked on operands. Each pending
                                // forwarded source whose producer already
                                // has a scheduled completion becomes usable
                                // at a known future cycle — a wake-up event
                                // for the cycle skip. (Sources whose
                                // producers have not even issued are
                                // covered transitively: the oldest blocked
                                // entry in the window always reduces to an
                                // issued producer, an in-flight memory op,
                                // or a fetch stall.)
                                for s in [&s0, &s1] {
                                    if let Some(Source::Forwarded {
                                        ready: false,
                                        ready_at: Some(ra),
                                        ..
                                    }) = s
                                    {
                                        if *ra > t {
                                            next_source_ready = next_source_ready.min(*ra);
                                        }
                                    }
                                }
                            }
                        }
                    }

                    // Update the prefix state with this entry (its own
                    // start-of-cycle doneness — unaffected by an issue
                    // this cycle, since done_before is strict).
                    let entry = &window[ci].entries[ei];
                    let done = entry.done_before(t);
                    match entry.completed_at {
                        Some(ct) if ct > t => next_completion = next_completion.min(ct),
                        Some(ct) if ct == t => completes_now = true,
                        _ => {}
                    }
                    if entry.instr.is_load() && !done {
                        flags &= !F_LOADS_DONE;
                    }
                    let mut resolved_store_addr = None;
                    if entry.instr.is_store() {
                        if !done {
                            flags &= !F_STORES_DONE;
                        }
                        if renaming {
                            // Packed gate, same shape as the issue
                            // path: an unresolved store gates every
                            // younger load under renaming, and its
                            // operands' readiness times are wake-up
                            // events. The issue gate above already
                            // cached this entry's bound when it found
                            // it blocked this cycle, so a hot cache
                            // answers without touching the bands.
                            let cached_blocked =
                                packed && entry.nb_epoch == commit_epoch && entry.not_before > t;
                            if cached_blocked {
                                next_source_ready = next_source_ready.min(entry.not_before);
                            }
                            let gate_blocked = cached_blocked
                                || (packed && bands.intersects(&entry.src_mask) && {
                                    let blocked =
                                        mask_intersection(bands.top(), &entry.src_mask, lane_words);
                                    let (truly, bound) = match pipelined {
                                        None => (
                                            true,
                                            packed_wakeups(
                                                &blocked,
                                                lane_words,
                                                writer_ready_at,
                                                t,
                                            ),
                                        ),
                                        Some(per_hop) => banded_blocked(
                                            &blocked,
                                            lane_words,
                                            bands,
                                            writer_ready_at,
                                            writer_pos,
                                            pos,
                                            per_hop,
                                            t,
                                        ),
                                    };
                                    if truly && bound > t {
                                        next_source_ready = next_source_ready.min(bound);
                                    }
                                    truly
                                });
                            if gate_blocked {
                                flags &= !F_STORES_RESOLVED;
                                store_infos.push(StoreInfo {
                                    resolved: false,
                                    addr: 0,
                                    value: 0,
                                });
                            } else {
                                // Recompute the store's operands against
                                // the *current* scan state (values are
                                // stable once their producers are ready).
                                let srcs = entry.instr.reads();
                                let s0 = srcs[0].map(&resolve);
                                let s1 = srcs[1].map(&resolve);
                                let resolved = s0.as_ref().is_none_or(Source::ready)
                                    && s1.as_ref().is_none_or(Source::ready);
                                if !resolved {
                                    // An unresolved store gates every
                                    // younger load under renaming; its
                                    // operands' readiness times are wake-up
                                    // events too.
                                    for s in [&s0, &s1] {
                                        if let Some(Source::Forwarded {
                                            ready: false,
                                            ready_at: Some(ra),
                                            ..
                                        }) = s
                                        {
                                            if *ra > t {
                                                next_source_ready = next_source_ready.min(*ra);
                                            }
                                        }
                                    }
                                }
                                let info = if resolved {
                                    let base = s0.as_ref().expect("store base").value();
                                    let offset = match entry.instr {
                                        Instr::Store { offset, .. } => offset,
                                        _ => unreachable!("store arm"),
                                    };
                                    StoreInfo {
                                        resolved: true,
                                        addr: (base.wrapping_add(offset as u32) as usize)
                                            % mem.words(),
                                        value: s1.as_ref().expect("store src").value(),
                                    }
                                } else {
                                    StoreInfo {
                                        resolved: false,
                                        addr: 0,
                                        value: 0,
                                    }
                                };
                                if !info.resolved {
                                    flags &= !F_STORES_RESOLVED;
                                }
                                resolved_store_addr = info.resolved.then_some(info.addr);
                                store_infos.push(info);
                            }
                        }
                    }
                    if let Some(addr) = resolved_store_addr {
                        // A renaming-resolved store's address shapes the
                        // schedule (younger loads forward from it) even
                        // when the store never issues — wrong-path stores
                        // never do — so the flush replay log needs it.
                        window[ci].entries[ei].mem_addr = Some(addr);
                    }
                    let entry = &window[ci].entries[ei];
                    if entry.instr.is_branch() && !done {
                        flags &= !F_BRANCHES_DONE;
                    }
                    if let Some(rd) = entry.instr.writes() {
                        if packed_vals {
                            // Update the packed snapshot lanes in place
                            // of the scalar map: value, seq and the
                            // has-writer lane bit (readiness joins
                            // below, shared with the unready gate).
                            let i = rd.index();
                            writer_value[i] = entry.result.unwrap_or(0);
                            writer_seq[i] = entry.seq;
                            has_writer[i / 64] |= 1u64 << (i % 64);
                        } else {
                            last_writer[rd.index()] = Some(Writer {
                                seq: entry.seq,
                                completed_at: entry.completed_at,
                                value: entry.result.unwrap_or(0),
                                pos,
                            });
                        }
                        if packed {
                            // Per-register readiness: the distance-0
                            // base is usable one cycle after
                            // completion; hop-distance costs are
                            // layered on per band. An entry issuing
                            // *this* cycle has `done + 1 > t`, so
                            // same-cycle readers correctly see it
                            // unready.
                            let i = rd.index();
                            let base = entry.completed_at.map_or(u64::MAX, |done| done + 1);
                            writer_ready_at[i] = base;
                            match pipelined {
                                None => {
                                    // One band: the plain unready bit.
                                    bands.assign_lane(i, (base <= t) as usize);
                                }
                                Some(_) => {
                                    writer_pos[i] = pos;
                                    if base.saturating_add(top_extra) <= t {
                                        // Ready at every distance —
                                        // the unchanged-column early
                                        // exit makes this free unless
                                        // an earlier same-register
                                        // writer raised the lane this
                                        // pass.
                                        bands.assign_lane(i, num_bands);
                                    } else {
                                        bands.assign_lane_horizon(i, base, hop_step, t);
                                    }
                                }
                            }
                        }
                    }
                    if issued_alu_class {
                        // Occupy a shared ALU through the completion
                        // cycle.
                        let done_at = window[ci].entries[ei]
                            .completed_at
                            .expect("alu-class issue sets completion");
                        let slot = alu_free_at
                            .iter_mut()
                            .find(|f| **f <= t)
                            .expect("a free ALU was counted");
                        *slot = done_at + 1;
                    }
                }
            }

            // ---- Phase B: memory arbitration and responses, through
            // the retained accept/response buffers (the memory system
            // clears them first) — no per-cycle allocation.
            let offered_requests = !requests.is_empty();
            mem.tick_into(t, requests, accepted, responses);
            let had_responses = !responses.is_empty();
            for &id in accepted.iter() {
                if let Some((ci, ei)) = locate(window, id) {
                    let e = &mut window[ci].entries[ei];
                    e.issued_at = Some(t);
                    e.mem = MemPhase::InFlight;
                }
            }
            for resp in responses.iter() {
                if let Some((ci, ei)) = locate(window, resp.id) {
                    let e = &mut window[ci].entries[ei];
                    if e.mem == MemPhase::InFlight {
                        e.completed_at = Some(t);
                        e.result = resp.value;
                        e.actual_next = Some(e.pc + 1);
                        e.mem = MemPhase::None;
                    }
                }
            }

            // Issue-rate histogram: stations that began execution (or
            // had a memory request accepted) this cycle.
            let issued_now = window
                .iter()
                .flat_map(|cl| cl.entries.iter())
                .filter(|e| e.issued_at == Some(t))
                .count();
            stats.record_issue_count(issued_now);

            // ---- Phase C: branch resolution, training and the paper's
            // one-cycle misprediction recovery.
            'resolve: for ci in 0..window.len() {
                for ei in 0..window[ci].entries.len() {
                    let e = &window[ci].entries[ei];
                    if e.instr.is_branch() && e.completed_at == Some(t) {
                        fetch.train(e.pc, e.taken.unwrap_or(false));
                        if e.mispredicted() {
                            let correct = e.actual_next.expect("resolved branch has next");
                            // Record the wrong-path suffix before it is
                            // squashed (ascending seq: the rest of this
                            // cluster, then every younger cluster).
                            let flusher_seq = e.seq;
                            let start = replay.entries.len();
                            for fe in &window[ci].entries[ei + 1..] {
                                replay.push_entry(fe, t);
                            }
                            for cl in window.iter().skip(ci + 1) {
                                for fe in &cl.entries {
                                    replay.push_entry(fe, t);
                                }
                            }
                            if replay.entries.len() > start {
                                replay.events.push(FlushEvent {
                                    branch_seq: flusher_seq,
                                    start,
                                    len: replay.entries.len() - start,
                                });
                            }
                            // Flush everything younger: later clusters
                            // entirely, this cluster past the branch.
                            let mut flushed = 0u64;
                            while window.len() > ci + 1 {
                                if let Some(mut cl) = window.pop_back() {
                                    flushed += cl.entries.len() as u64;
                                    cl.entries.clear();
                                    cluster_pool.push(cl.entries);
                                }
                            }
                            let keep = ei + 1;
                            flushed += (window[ci].entries.len() - keep) as u64;
                            window[ci].entries.truncate(keep);
                            stats.flushed += flushed;
                            // Refilled clusters reuse the flushed
                            // physical slots (hardware overwrites the
                            // squashed stations in place).
                            alloc_counter = window[ci].ring_index + 1;
                            fetch.redirect(correct);
                            if let Some(tc) = &mut trace_cache {
                                fetch_stalled_until = t + 1 + tc.redirect(correct);
                            }
                            break 'resolve;
                        }
                    }
                }
            }

            // ---- Phase D: in-order commit at cluster granularity
            // (the oldest-station CSPP, evaluated on start-of-cycle
            // state).
            let mut committed_any = false;
            while let Some(front) = window.front() {
                let complete_cluster = front.entries.len() == c || fetch.exhausted();
                let all_done = front.entries.iter().all(|e| e.done_before(t));
                if !(complete_cluster && all_done) {
                    break;
                }
                let mut cluster = window.pop_front().expect("front exists");
                let ring_index = cluster.ring_index;
                committed_any = true;
                for (ei, e) in cluster.entries.drain(..).enumerate() {
                    let synthetic = e.is_synthetic(program.len());
                    if !synthetic {
                        stats.committed += 1;
                        timings.push(InstrTiming {
                            seq: e.seq,
                            pc: e.pc,
                            instr: e.instr,
                            fetched: e.fetched_at,
                            issue: e.issued_at.expect("committed ⇒ issued"),
                            complete: e.completed_at.expect("committed ⇒ completed"),
                            slot: (ring_index % k) * c + ei,
                        });
                        if e.instr.is_branch() {
                            stats.branches += 1;
                            if e.mispredicted() {
                                stats.mispredictions += 1;
                            }
                        }
                        if let Some(rd) = e.instr.writes() {
                            committed_regs[rd.index()] =
                                e.result.expect("writer committed with result");
                        }
                    }
                    if matches!(e.instr, Instr::Halt) {
                        halted = true;
                    }
                }
                cluster_pool.push(cluster.entries);
                if halted {
                    break;
                }
            }
            if committed_any {
                // Committed registers became readable: every cached
                // issue bound is now suspect (see `commit_epoch`).
                commit_epoch += 1;
            }
            if halted {
                t += 1;
                break;
            }

            // ---- Phase E: refill freed stations, live next cycle
            // (unless a trace-cache miss is stalling fetch).
            let seq_before_refill = next_seq;
            if t + 1 >= fetch_stalled_until {
                refill(
                    window,
                    fetch,
                    &mut next_seq,
                    &mut alloc_counter,
                    cluster_pool,
                    t + 1,
                );
            }
            let refilled = next_seq != seq_before_refill;

            // ---- Cycle skip: if this cycle was provably silent —
            // nothing issued or stalled on an ALU, no memory traffic in
            // either direction, no completion, no commit and no refill
            // — then every cycle up to the next scheduled event is an
            // identical no-op: the scan re-derives the same blocked
            // state (operand readiness and prefix flags depend only on
            // completion times, all in the future), commit and refill
            // stay ineligible, and skipping the memory system's empty
            // ticks is free (capacity resets are idempotent and banks
            // compare absolute times). Jump straight to the event,
            // accounting the skipped span in closed form.
            let silent = issued_now == 0
                && !offered_requests
                && !had_responses
                && !completes_now
                && !committed_any
                && !refilled
                && stats.alu_stalls == alu_stalls_before;
            if self.cfg.cycle_skip && silent {
                let mut event = next_completion.min(next_source_ready);
                if let Some(m) = mem.next_completion_at() {
                    event = event.min(m);
                }
                // A stalled fetch re-enables refill in the Phase E of
                // cycle `fetch_stalled_until - 1`; that is an event
                // only if the window has room for the refill to fill.
                let room = window.len() < k || window.back().is_some_and(|cl| cl.entries.len() < c);
                if t + 1 < fetch_stalled_until && room && !fetch.exhausted() {
                    event = event.min(fetch_stalled_until - 1);
                }
                // No event at all (a genuinely wedged machine) spins to
                // the deadlock guard exactly like the naive loop.
                let target = event.min(self.cfg.max_cycles).max(t + 1);
                let skipped = target - (t + 1);
                if skipped > 0 {
                    stats.occupancy_sum += skipped * occupancy;
                    stats.record_idle_cycles(skipped);
                    t = target - 1;
                }
            }

            t += 1;
        }

        stats.cycles = t;
        stats.mem = mem.stats();
        // Timings carry unique `seq` keys, so the unstable sort is
        // deterministic — and, unlike the stable sort, allocation-free.
        timings.sort_unstable_by_key(|x| x.seq);
        out_mem.clear();
        out_mem.extend_from_slice(mem.snapshot());
        *out_cycles = t;
        *out_halted = halted;
    }
}
