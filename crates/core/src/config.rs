//! Processor configuration.

use crate::latency::LatencyModel;
use crate::predict::PredictorKind;
use ultrascalar_memsys::MemConfig;

/// How register results travel from producer to consumer stations
/// (the paper's §7 timing-methodology discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardModel {
    /// The paper's base design: "a global single-phase clock with all
    /// communications between components being completed in one clock
    /// cycle" — every consumer sees a result on the next cycle.
    SingleCycle,
    /// The §7 pipelined/self-timed variant: "it is possible to pipeline
    /// the system so that the long communications paths would include
    /// latches". Forwarding from station `a` to station `b` costs
    /// `per_hop` extra cycles per H-tree level up to their lowest
    /// common ancestor and back down, so neighbouring stations
    /// communicate fast and far stations slowly — "half of the
    /// communications paths from one station to its successor are
    /// completely local".
    Pipelined {
        /// Extra cycles per tree level, each direction.
        per_hop: u64,
    },
}

impl ForwardModel {
    /// Extra forwarding cycles from station position `a` to `b`
    /// (positions are window ring slots; the H-tree LCA height is the
    /// bit-length of `a XOR b`).
    #[inline]
    pub fn extra(&self, a: usize, b: usize) -> u64 {
        match *self {
            ForwardModel::SingleCycle => 0,
            ForwardModel::Pipelined { per_hop } => {
                Self::extra_at(per_hop, ultrascalar_prefix::packed::hop_level(a, b))
            }
        }
    }

    /// Extra forwarding cycles for a hop distance of `levels` H-tree
    /// levels under a per-level cost of `per_hop` each direction.
    /// Saturating: an astronomically large `--per-hop` must pin the
    /// readiness horizon at "never", not wrap it into the past (the
    /// unchecked `per_hop * 2 * levels` this replaces overflowed u64
    /// for CLI-reachable inputs).
    #[inline]
    pub fn extra_at(per_hop: u64, levels: usize) -> u64 {
        per_hop.saturating_mul(2).saturating_mul(levels as u64)
    }
}

/// Configuration shared by every processor model.
///
/// `PartialEq` is structural and exact — the engine pool uses it to
/// decide whether a warm engine can serve a request, so two configs
/// compare equal iff an engine built from one is interchangeable with
/// an engine built from the other.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcConfig {
    /// Window / issue width `n` (number of execution stations).
    pub window: usize,
    /// Cluster size `C`: 1 for the Ultrascalar I, `window` for the
    /// Ultrascalar II, anything in between for the hybrid. Must divide
    /// `window`.
    pub cluster: usize,
    /// Functional-unit latencies.
    pub latency: LatencyModel,
    /// Branch predictor.
    pub predictor: PredictorKind,
    /// Memory system.
    pub mem: MemConfig,
    /// Give up after this many cycles (deadlock guard).
    pub max_cycles: u64,
    /// Shared-ALU pool size (`None` = one ALU per station, the paper's
    /// base design; `Some(k)` = the Memo 2 scheduler with `k` shared
    /// ALUs serving `Alu`/`AluImm` instructions, the paper's closing
    /// "window-size of 128 and 16 shared ALUs" configuration).
    pub alus: Option<usize>,
    /// Memory renaming (§7: "the memory bandwidth pressure can also be
    /// reduced by using memory-renaming hardware, which can be
    /// implemented by CSPP circuits"): loads forward from the nearest
    /// older in-window store to the same address, and bypass memory
    /// serialisation entirely once all older store addresses are known
    /// to differ.
    pub memory_renaming: bool,
    /// Register-forwarding latency model.
    pub forward: ForwardModel,
    /// Trace-cache fetch model: `Some((entries, miss_penalty))` makes a
    /// misprediction redirect to an uncached trace head stall fetch for
    /// `miss_penalty` cycles (LRU over `entries` heads). `None` models
    /// the paper's ideal trace cache (every redirect resumes next
    /// cycle).
    pub trace_cache: Option<(usize, u64)>,
    /// Instructions fetched per cycle (`None` = one per freed station,
    /// i.e. fetch width = issue width, the paper's assumption that "the
    /// issue width and the instruction-fetch width scale together").
    /// `Some(f)` caps refill at `f` per cycle for fetch-bandwidth
    /// ablations.
    pub fetch_width: Option<usize>,
    /// Event-driven cycle skipping (on by default): when a cycle is
    /// provably silent — nothing issued, no memory traffic, no
    /// completion, commit or refill — the engine jumps straight to the
    /// next scheduled event (completion, forwarding-readiness, memory
    /// response or fetch-stall expiry), accumulating per-cycle
    /// statistics in closed form over the skipped span. Results are
    /// cycle-exact either way; `false` retains the naive
    /// tick-every-cycle loop as a differential-testing reference.
    pub cycle_skip: bool,
    /// Packed word-parallel flag networks (on by default): the
    /// program-order scan keeps its four all-earlier AND flags in one
    /// bit-packed lane word and maintains hop-banded register-unready
    /// lane words (64 registers per word, covering the ISA's full
    /// 256-register space; one nested band per H-tree level under
    /// [`ForwardModel::Pipelined`], a single band under
    /// [`ForwardModel::SingleCycle`]) plus a per-register
    /// readiness-time table, so a blocked station is detected by
    /// AND-ing its decode-time source mask against a small word array
    /// instead of re-deriving readiness per source operand. Results are
    /// cycle-exact either way; `false` retains the scalar flag path as
    /// a differential-testing reference. When the gate must fall back
    /// to the scalar scan despite this flag (`num_regs` wider than the
    /// packed lane words), `ProcStats::packed_fallbacks` records the
    /// downgrade.
    pub packed_flags: bool,
    /// Packed *value* forwarding (on by default; requires
    /// [`ProcConfig::packed_flags`]): the scan batches last-writer
    /// value/readiness propagation into a per-cycle packed register
    /// snapshot — struct-of-arrays value/seq/readiness tables gated by
    /// a has-writer lane word, the engine-side form of the bit-sliced
    /// value CSPP in `ultrascalar_prefix::sliced` — so the per-cycle
    /// reset is a word-parallel clear of the lane words instead of an
    /// `O(num_regs)` scalar-map fill, and a station that passes the
    /// unready-mask gate reads its operands straight out of the
    /// snapshot lanes. Results are cycle-exact either way; `false`
    /// retains the scalar last-writer resolve as a
    /// differential-testing reference. The flag rides on the same gate
    /// as `packed_flags` (`num_regs` within the packed lane words) and
    /// the same `ProcStats::packed_fallbacks` diagnostic; under
    /// pipelined forwarding the snapshot resolve extracts per-consumer
    /// `ready_at` horizons from the hop-banded readiness state.
    pub packed_values: bool,
    /// Pin the substrate's portable SWAR kernels for the duration of
    /// every run under this config (off by default), bypassing the
    /// runtime AVX2 dispatch in `ultrascalar_prefix::simd`. Dispatch
    /// never changes an observable result — both paths are bit-for-bit
    /// identical — so this is purely a diagnostic/A-B knob: rule out a
    /// suspect vector codepath in the field, or measure the SWAR twin
    /// on an AVX2 host. The `USIM_FORCE_SWAR` environment variable
    /// (read once per process) forces the same fallback globally.
    pub force_swar: bool,
    /// Run the packed readiness path even on configuration shapes
    /// where [`ProcConfig::packed_shape_wins`] says it net-loses (off
    /// by default). Results are cycle-exact either way; this exists so
    /// A/B harnesses and differential tests can still reach the gated
    /// path (e.g. the hop-banded pipelined readiness words) on shapes
    /// the engine would otherwise run scalar.
    pub packed_override: bool,
}

impl ProcConfig {
    /// An Ultrascalar I (`C = 1`) with ideal memory and a perfect
    /// oracle — the pure-dataflow configuration used for timing studies
    /// like the paper's Figure 3.
    pub fn ultrascalar_i(window: usize) -> Self {
        ProcConfig {
            window,
            cluster: 1,
            latency: LatencyModel::default(),
            predictor: PredictorKind::Perfect,
            mem: MemConfig::ideal(window, 1 << 16),
            max_cycles: 10_000_000,
            alus: None,
            memory_renaming: false,
            forward: ForwardModel::SingleCycle,
            trace_cache: None,
            fetch_width: None,
            cycle_skip: true,
            packed_flags: true,
            packed_values: true,
            force_swar: false,
            packed_override: false,
        }
    }

    /// An Ultrascalar II (`C = n`): batch window refill.
    pub fn ultrascalar_ii(window: usize) -> Self {
        ProcConfig {
            cluster: window,
            ..ProcConfig::ultrascalar_i(window)
        }
    }

    /// A hybrid with `window / cluster` clusters of `cluster` stations.
    pub fn hybrid(window: usize, cluster: usize) -> Self {
        ProcConfig {
            cluster,
            ..ProcConfig::ultrascalar_i(window)
        }
    }

    /// Builder: replace the predictor.
    pub fn with_predictor(mut self, p: PredictorKind) -> Self {
        self.predictor = p;
        self
    }

    /// Builder: replace the memory configuration.
    pub fn with_mem(mut self, mem: MemConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Builder: replace the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Builder: share `k` ALUs across the window (Memo 2 scheduler).
    pub fn with_shared_alus(mut self, k: usize) -> Self {
        self.alus = Some(k);
        self
    }

    /// Builder: enable memory renaming (store→load forwarding and
    /// address-based disambiguation).
    pub fn with_memory_renaming(mut self) -> Self {
        self.memory_renaming = true;
        self
    }

    /// Builder: replace the forwarding-latency model.
    pub fn with_forwarding(mut self, forward: ForwardModel) -> Self {
        self.forward = forward;
        self
    }

    /// Builder: cap instruction fetch at `f` per cycle.
    pub fn with_fetch_width(mut self, f: usize) -> Self {
        self.fetch_width = Some(f);
        self
    }

    /// Builder: model a finite trace cache (`entries` heads,
    /// `miss_penalty` stall cycles on a redirect miss).
    pub fn with_trace_cache(mut self, entries: usize, miss_penalty: u64) -> Self {
        self.trace_cache = Some((entries, miss_penalty));
        self
    }

    /// Builder: disable event-driven cycle skipping, forcing the naive
    /// tick-every-cycle loop. Cycle-exact results are identical with
    /// skipping on; this exists as the differential-testing reference
    /// and for apples-to-apples simulator-performance measurements.
    pub fn without_cycle_skipping(mut self) -> Self {
        self.cycle_skip = false;
        self
    }

    /// Builder: disable the packed word-parallel flag networks, forcing
    /// the scalar per-flag/per-operand path. Packed value forwarding
    /// rides on the flag networks (the unready-mask gate and readiness
    /// tables), so this clears [`ProcConfig::packed_values`] too.
    /// Cycle-exact results are identical with packing on; this exists
    /// as the differential-testing reference and for apples-to-apples
    /// simulator-performance measurements.
    pub fn without_packed_flags(mut self) -> Self {
        self.packed_flags = false;
        self.packed_values = false;
        self
    }

    /// Builder: disable packed value forwarding only, keeping the
    /// packed flag networks and unready-mask gate but resolving
    /// operands through the scalar last-writer map. Cycle-exact results
    /// are identical either way; this isolates the value-snapshot
    /// contribution for differential testing and A/B measurement.
    pub fn without_packed_values(mut self) -> Self {
        self.packed_values = false;
        self
    }

    /// Builder: pin the substrate's portable SWAR kernels for every
    /// run under this config (see [`ProcConfig::force_swar`]).
    pub fn with_force_swar(mut self) -> Self {
        self.force_swar = true;
        self
    }

    /// Builder: run the packed readiness path even on shapes where it
    /// measures as a net loss (see [`ProcConfig::packed_override`]).
    pub fn with_packed_override(mut self) -> Self {
        self.packed_override = true;
        self
    }

    /// Does the packed readiness path pay for itself under this
    /// configuration's *shape*? Measured on the interleaved step_ab
    /// A/B harness (`BENCH_step_ab.json`): the packed gate wins
    /// 1.02–1.14× on single-cycle-forwarding shapes with latency-free
    /// memory and sub-window clusters, and net-loses under pipelined
    /// forwarding (band upkeep plus per-lane hop refinement outweigh
    /// the skipped operand resolutions, 0.87–0.96×), latency-bearing
    /// memory (runs dominated by stall cycles the scan cannot
    /// shorten) and batch-refill `C = n` windows. The engine runs the
    /// scalar scan on losing shapes — recording the decision in
    /// `ProcStats::packed_shape_gated` — unless
    /// [`ProcConfig::packed_override`] punches through; results are
    /// cycle-exact on either path.
    pub fn packed_shape_wins(&self) -> bool {
        matches!(self.forward, ForwardModel::SingleCycle)
            && self.cluster < self.window
            && self.mem.hop_latency == 0
            && self.mem.base_latency == 0
    }

    /// Number of clusters `K = n / C`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (use
    /// [`ProcConfig::validate`] first for a `Result`).
    pub fn num_clusters(&self) -> usize {
        self.validate().expect("invalid processor configuration");
        self.window / self.cluster
    }

    /// Check the structural constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be at least 1".into());
        }
        if self.cluster == 0 {
            return Err("cluster must be at least 1".into());
        }
        if !self.window.is_multiple_of(self.cluster) {
            return Err(format!(
                "cluster size {} must divide window size {}",
                self.cluster, self.window
            ));
        }
        if self.alus == Some(0) {
            return Err("a shared-ALU pool needs at least one ALU".into());
        }
        if self.fetch_width == Some(0) {
            return Err("fetch width must be at least one".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(ProcConfig::ultrascalar_i(8).num_clusters(), 8);
        assert_eq!(ProcConfig::ultrascalar_ii(8).num_clusters(), 1);
        assert_eq!(ProcConfig::hybrid(32, 8).num_clusters(), 4);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ProcConfig::hybrid(8, 3).validate().is_err());
        assert!(ProcConfig {
            window: 0,
            ..ProcConfig::ultrascalar_i(1)
        }
        .validate()
        .is_err());
        assert!(ProcConfig {
            cluster: 0,
            ..ProcConfig::ultrascalar_i(4)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn builders_compose() {
        let c = ProcConfig::ultrascalar_i(4)
            .with_predictor(PredictorKind::Bimodal(64))
            .with_latency(LatencyModel::unit())
            .with_shared_alus(2)
            .with_memory_renaming()
            .without_packed_flags()
            .with_forwarding(ForwardModel::Pipelined { per_hop: 1 });
        assert!(!c.packed_flags);
        // Value forwarding rides on the flag networks: clearing the
        // flags clears it too.
        assert!(!c.packed_values);
        assert_eq!(c.predictor, PredictorKind::Bimodal(64));
        assert_eq!(c.latency, LatencyModel::unit());
        assert_eq!(c.alus, Some(2));
        assert!(c.memory_renaming);
        assert_eq!(c.forward, ForwardModel::Pipelined { per_hop: 1 });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn packed_values_clears_independently() {
        let c = ProcConfig::ultrascalar_i(4);
        assert!(c.packed_flags && c.packed_values);
        let c = c.without_packed_values();
        assert!(c.packed_flags && !c.packed_values);
    }

    #[test]
    fn zero_alus_rejected() {
        assert!(ProcConfig::ultrascalar_i(4)
            .with_shared_alus(0)
            .validate()
            .is_err());
    }

    #[test]
    fn forwarding_extra_latency() {
        let single = ForwardModel::SingleCycle;
        assert_eq!(single.extra(0, 63), 0);
        let piped = ForwardModel::Pipelined { per_hop: 1 };
        // Same station: no tree traversal.
        assert_eq!(piped.extra(5, 5), 0);
        // Adjacent pair sharing a level-1 subtree: one level up, one
        // down.
        assert_eq!(piped.extra(4, 5), 2);
        // Opposite halves of an 8-leaf tree: three levels each way.
        assert_eq!(piped.extra(0, 7), 6);
        // Symmetric.
        assert_eq!(piped.extra(7, 0), piped.extra(0, 7));
    }

    #[test]
    fn forwarding_extra_saturates() {
        // The CLI accepts any u64 --per-hop; the unchecked multiply
        // this pins against wrapped readiness into the past.
        let piped = ForwardModel::Pipelined { per_hop: u64::MAX };
        assert_eq!(piped.extra(0, 7), u64::MAX);
        assert_eq!(piped.extra(5, 5), 0);
        let piped = ForwardModel::Pipelined {
            per_hop: u64::MAX / 2,
        };
        assert_eq!(piped.extra(0, 1), u64::MAX - 1);
        assert_eq!(piped.extra(0, 3), u64::MAX);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(256))]

        /// Forwarding latency is a symmetric pseudo-metric on ring
        /// positions, monotone in the per-hop cost — for *any* u64
        /// `per_hop`, including the overflowing regime.
        #[test]
        fn prop_extra_symmetric_zero_diag_monotone(
            a in 0usize..1024,
            b in 0usize..1024,
            per_hop in proptest::prelude::any::<u64>(),
            bump in proptest::prelude::any::<u64>(),
        ) {
            let f = ForwardModel::Pipelined { per_hop };
            proptest::prop_assert_eq!(f.extra(a, b), f.extra(b, a));
            proptest::prop_assert_eq!(f.extra(a, a), 0);
            // Monotone in per_hop (saturating, so never a wrap-around
            // decrease).
            let g = ForwardModel::Pipelined {
                per_hop: per_hop.saturating_add(bump),
            };
            proptest::prop_assert!(g.extra(a, b) >= f.extra(a, b));
            // And monotone in hop distance via the level form.
            let lvl = ultrascalar_prefix::packed::hop_level(a, b);
            proptest::prop_assert_eq!(
                f.extra(a, b),
                ForwardModel::extra_at(per_hop, lvl)
            );
            if lvl > 0 {
                proptest::prop_assert!(
                    ForwardModel::extra_at(per_hop, lvl)
                        >= ForwardModel::extra_at(per_hop, lvl - 1)
                );
            }
        }
    }
}
