//! A pool of warm [`Ultrascalar`] engines keyed by [`ProcConfig`].
//!
//! Serving mode amortises per-request setup the way the paper's CSPP
//! substrate amortises per-instruction cost across the window: the
//! expensive structures are built once and rewound in place. An engine
//! retains its fetch unit, memory system, window clusters and scan
//! buffers across runs (see [`crate::engine::Ultrascalar`]), so a pool
//! hit turns a request into a pure [`Processor::run_reusing`] call —
//! zero allocations in steady state. Each pooled engine carries its own
//! [`RunResult`] buffer for the same reason.
//!
//! Each pool is a small linear-scan LRU: request streams alternate
//! between a handful of configurations, so an exact `ProcConfig`
//! comparison over a few entries beats any hashing scheme — and a
//! config compare allocates nothing.
//!
//! Two access disciplines are provided:
//!
//! * [`EnginePool::acquire`] — borrow a warm engine in place. The
//!   single-threaded discipline: the caller runs while the pool is
//!   mutably borrowed.
//! * [`EnginePool::try_take`] / [`EnginePool::put`] and the
//!   multi-shard [`ShardedEnginePool::checkout`] /
//!   [`ShardedEnginePool::checkin`] — *remove* a warm engine from the
//!   pool, run it with no lock held, and return it afterwards. The
//!   concurrent serving loop's discipline: a shard mutex is held only
//!   for the linear scan, never for a simulation, so worker threads
//!   contend for nanoseconds, not for run times. Two workers
//!   simulating the same configuration simply hold two engines; both
//!   go back at check-in (evicting LRU entries past capacity).

use crate::config::ProcConfig;
use crate::engine::Ultrascalar;
use crate::processor::{Processor, RunResult};
use std::sync::{Mutex, MutexGuard};

/// A warm engine with its reusable result buffer.
#[derive(Debug)]
pub struct PooledEngine {
    /// The engine (configuration fixed at pool admission).
    pub engine: Ultrascalar,
    /// Result buffer for [`Processor::run_reusing`]; overwritten by
    /// each run, so read it before the next acquire-and-run.
    pub result: RunResult,
}

impl PooledEngine {
    /// Build a cold engine for `cfg` (the checkout-miss path).
    ///
    /// # Panics
    /// Panics if `cfg` is invalid (as [`Ultrascalar::new`] would).
    pub fn new(cfg: &ProcConfig) -> Self {
        PooledEngine {
            engine: Ultrascalar::new(cfg.clone()),
            result: RunResult::default(),
        }
    }

    /// Run `program` on the warm engine into the pooled result buffer
    /// and return a reference to it.
    pub fn run(&mut self, program: &ultrascalar_isa::Program) -> &RunResult {
        self.engine.run_reusing(program, &mut self.result);
        &self.result
    }
}

/// Roll-up of pool counters (one shard's, or the whole sharded
/// pool's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions/checkouts served by an already-warm engine.
    pub hits: u64,
    /// Acquisitions/checkouts that had to build an engine.
    pub misses: u64,
    /// Warm engines dropped to make room at capacity.
    pub evictions: u64,
    /// Engines currently pooled (checked-out engines are not counted
    /// until they come back).
    pub warm: usize,
}

/// LRU pool of warm engines keyed by exact [`ProcConfig`] equality.
#[derive(Debug)]
pub struct EnginePool {
    entries: Vec<(u64, PooledEngine)>,
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl EnginePool {
    /// Create a pool holding at most `capacity` warm engines.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "engine pool needs capacity");
        EnginePool {
            entries: Vec::with_capacity(capacity + 1),
            capacity,
            stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Fetch the warm engine for `cfg`, building one on first use (and
    /// evicting the least recently used engine at capacity). A hit
    /// performs no allocation at all.
    ///
    /// # Panics
    /// Panics if `cfg` is invalid (as [`Ultrascalar::new`] would).
    pub fn acquire(&mut self, cfg: &ProcConfig) -> &mut PooledEngine {
        self.stamp += 1;
        let found = self
            .entries
            .iter()
            .position(|(_, p)| p.engine.config() == cfg);
        let idx = match found {
            Some(i) => {
                self.hits += 1;
                self.entries[i].0 = self.stamp;
                i
            }
            None => {
                self.misses += 1;
                if self.entries.len() == self.capacity {
                    self.evict_lru();
                }
                self.entries.push((self.stamp, PooledEngine::new(cfg)));
                self.entries.len() - 1
            }
        };
        &mut self.entries[idx].1
    }

    /// Remove and return the warm engine for `cfg` if one is pooled
    /// (counted as a hit; `None` is counted as a miss and the caller
    /// builds its own). A hit performs no allocation — the entry is
    /// `swap_remove`d out of the scan vector.
    pub fn try_take(&mut self, cfg: &ProcConfig) -> Option<PooledEngine> {
        self.stamp += 1;
        let found = self
            .entries
            .iter()
            .position(|(_, p)| p.engine.config() == cfg);
        match found {
            Some(i) => {
                self.hits += 1;
                Some(self.entries.swap_remove(i).1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Return a checked-out (or freshly built) engine to the pool,
    /// evicting the least recently used entry if the pool is over
    /// capacity. Within capacity this performs no allocation: the
    /// entry vector's slack is reserved up front.
    pub fn put(&mut self, engine: PooledEngine) {
        self.stamp += 1;
        self.entries.push((self.stamp, engine));
        while self.entries.len() > self.capacity {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        let lru = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (stamp, _))| *stamp)
            .map(|(i, _)| i)
            .expect("pool non-empty at capacity");
        self.entries.swap_remove(lru);
        self.evictions += 1;
    }

    /// Engines currently pooled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the pool empty (no engine warmed yet)?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Acquisitions served by an already-warm engine.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Acquisitions that had to build (or rebuild after eviction) an
    /// engine.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Warm engines dropped to make room at capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            warm: self.entries.len(),
        }
    }
}

/// A stable shard-selection hash over the configuration fields that
/// distinguish engines in practice. Collisions are harmless (two
/// configs land in the same shard and the exact `ProcConfig` equality
/// scan still separates them); what matters is that *equal* configs
/// always hash equal, and that the hash allocates nothing.
pub fn config_shard_hash(cfg: &ProcConfig) -> u64 {
    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = mix(h, cfg.window as u64);
    h = mix(h, cfg.cluster as u64);
    h = mix(h, cfg.mem.n_leaves as u64);
    h = mix(h, cfg.mem.banks as u64);
    h = mix(h, cfg.mem.hop_latency);
    h = mix(h, cfg.mem.network as u64);
    h = mix(h, cfg.mem.cluster_cache.is_some() as u64);
    h = mix(h, cfg.alus.map_or(0, |k| k as u64 + 1));
    h = mix(h, cfg.memory_renaming as u64);
    h = mix(h, cfg.fetch_width.map_or(0, |f| f as u64 + 1));
    h = mix(h, cfg.force_swar as u64);
    h = mix(h, cfg.packed_override as u64);
    // Mix the variant discriminant in multiplicatively instead of the
    // old `per_hop + 1`, which overflowed (a debug-build panic) on
    // `per_hop == u64::MAX`. Forcing the low bit keeps every pipelined
    // model distinct from `SingleCycle`'s 0 even when the wrapping
    // multiply lands on it.
    h = mix(
        h,
        match cfg.forward {
            crate::config::ForwardModel::SingleCycle => 0,
            crate::config::ForwardModel::Pipelined { per_hop } => {
                per_hop.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
            }
        },
    );
    h = mix(
        h,
        match cfg.predictor {
            crate::predict::PredictorKind::Perfect => 1,
            crate::predict::PredictorKind::NotTaken => 2,
            crate::predict::PredictorKind::Taken => 3,
            crate::predict::PredictorKind::Btfn => 4,
            crate::predict::PredictorKind::Bimodal(k) => 8 + k as u64,
        },
    );
    h
}

/// Lock a shard, recovering from poison: shard state is a plain LRU
/// whose invariants hold on every exit path, so one panicking thread
/// must not wedge every other worker.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// N independent [`EnginePool`] shards, each behind its own mutex,
/// selected by [`config_shard_hash`] — the concurrent serving loop's
/// shared engine pool.
///
/// The access discipline is checkout/checkin: a checkout *removes* the
/// warm engine (or builds one on a miss, outside any lock), the worker
/// simulates with no lock held, and checkin returns the engine to its
/// shard. Shard mutexes are therefore held only for the linear scans.
#[derive(Debug)]
pub struct ShardedEnginePool {
    shards: Vec<Mutex<EnginePool>>,
}

impl ShardedEnginePool {
    /// Create a sharded pool with `shards` shards holding at most
    /// `total_capacity` warm engines between them (each shard gets
    /// `ceil(total/shards)`, at least one).
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(total_capacity: usize, shards: usize) -> Self {
        assert!(total_capacity > 0, "engine pool needs capacity");
        assert!(shards > 0, "engine pool needs at least one shard");
        let per_shard = total_capacity.div_ceil(shards).max(1);
        ShardedEnginePool {
            shards: (0..shards)
                .map(|_| Mutex::new(EnginePool::new(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, cfg: &ProcConfig) -> &Mutex<EnginePool> {
        &self.shards[(config_shard_hash(cfg) % self.shards.len() as u64) as usize]
    }

    /// Check out a warm engine for `cfg`, building a cold one (outside
    /// the shard lock) on a miss. The engine is *owned* by the caller
    /// until [`ShardedEnginePool::checkin`]; a hit performs no
    /// allocation.
    ///
    /// # Panics
    /// Panics if `cfg` is invalid (as [`Ultrascalar::new`] would).
    pub fn checkout(&self, cfg: &ProcConfig) -> PooledEngine {
        let warm = lock(self.shard(cfg)).try_take(cfg);
        warm.unwrap_or_else(|| PooledEngine::new(cfg))
    }

    /// Return a checked-out engine to its shard (evicting that shard's
    /// LRU entry if it is at capacity). Within capacity this performs
    /// no allocation.
    pub fn checkin(&self, engine: PooledEngine) {
        let shard = self.shard(engine.engine.config());
        lock(shard).put(engine);
    }

    /// Counters summed across all shards.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for shard in &self.shards {
            let s = lock(shard).stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.warm += s.warm;
        }
        total
    }

    /// Per-shard counter snapshots (for shard-balance observability).
    pub fn shard_stats(&self) -> Vec<PoolStats> {
        self.shards.iter().map(|s| lock(s).stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_isa::workload;

    #[test]
    fn hit_reuses_miss_builds() {
        let mut pool = EnginePool::new(2);
        let a = ProcConfig::ultrascalar_i(4);
        let b = ProcConfig::ultrascalar_ii(4);
        pool.acquire(&a);
        assert_eq!((pool.hits(), pool.misses(), pool.len()), (0, 1, 1));
        pool.acquire(&a);
        assert_eq!((pool.hits(), pool.misses(), pool.len()), (1, 1, 1));
        pool.acquire(&b);
        assert_eq!((pool.hits(), pool.misses(), pool.len()), (1, 2, 2));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut pool = EnginePool::new(2);
        let a = ProcConfig::ultrascalar_i(4);
        let b = ProcConfig::ultrascalar_i(8);
        let c = ProcConfig::ultrascalar_i(16);
        pool.acquire(&a);
        pool.acquire(&b);
        pool.acquire(&a); // refresh a: b is now LRU
        pool.acquire(&c); // evicts b
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.evictions(), 1);
        let before = pool.misses();
        pool.acquire(&a);
        assert_eq!(pool.misses(), before, "a must still be warm");
        pool.acquire(&b);
        assert_eq!(pool.misses(), before + 1, "b was evicted");
    }

    #[test]
    fn pooled_run_matches_fresh_engine() {
        let mut pool = EnginePool::new(1);
        let cfg = ProcConfig::ultrascalar_i(8);
        for (name, prog) in workload::standard_suite(3) {
            let fresh = Ultrascalar::new(cfg.clone()).run(&prog);
            let warm = pool.acquire(&cfg).run(&prog);
            assert_eq!(warm.cycles, fresh.cycles, "{name}");
            assert_eq!(warm.regs, fresh.regs, "{name}");
        }
    }

    #[test]
    fn take_put_round_trip() {
        let mut pool = EnginePool::new(2);
        let a = ProcConfig::ultrascalar_i(4);
        assert!(pool.try_take(&a).is_none());
        assert_eq!((pool.hits(), pool.misses()), (0, 1));
        pool.put(PooledEngine::new(&a));
        let taken = pool.try_take(&a).expect("warm engine comes back");
        assert_eq!((pool.hits(), pool.misses(), pool.len()), (1, 1, 0));
        pool.put(taken);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.evictions(), 0);
    }

    #[test]
    fn put_past_capacity_evicts() {
        let mut pool = EnginePool::new(1);
        let a = ProcConfig::ultrascalar_i(4);
        let b = ProcConfig::ultrascalar_i(8);
        pool.put(PooledEngine::new(&a));
        pool.put(PooledEngine::new(&b));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.evictions(), 1);
        // The later put (b) survives; a was the LRU.
        assert!(pool.try_take(&b).is_some());
    }

    #[test]
    fn shard_hash_stable_and_separates() {
        let a = ProcConfig::ultrascalar_i(8);
        assert_eq!(
            config_shard_hash(&a),
            config_shard_hash(&a.clone()),
            "equal configs hash equal"
        );
        let b = ProcConfig::ultrascalar_ii(8);
        assert_ne!(config_shard_hash(&a), config_shard_hash(&b));
        assert_ne!(
            config_shard_hash(&a),
            config_shard_hash(&ProcConfig::ultrascalar_i(16))
        );
    }

    /// Regression: the forwarding-model mix used `per_hop + 1`, which
    /// panicked in debug builds when a client sent `per_hop ==
    /// u64::MAX`. The wrapping mix must accept the full range, stay
    /// stable for equal configs, and keep pipelined models apart from
    /// the single-cycle baseline.
    #[test]
    fn shard_hash_handles_extreme_per_hop() {
        use crate::config::ForwardModel;
        let base = ProcConfig::ultrascalar_i(8);
        for per_hop in [0u64, 1, 7, u64::MAX - 1, u64::MAX] {
            let cfg = base
                .clone()
                .with_forwarding(ForwardModel::Pipelined { per_hop });
            let h = config_shard_hash(&cfg);
            assert_eq!(h, config_shard_hash(&cfg.clone()), "stable at {per_hop}");
            assert_ne!(
                h,
                config_shard_hash(&base),
                "pipelined {per_hop} must not collide with single-cycle"
            );
        }
        // A sharded checkout at the extreme value must not panic.
        let pool = ShardedEnginePool::new(2, 2);
        let cfg = base.with_forwarding(ForwardModel::Pipelined { per_hop: u64::MAX });
        let e = pool.checkout(&cfg);
        pool.checkin(e);
        assert_eq!(pool.stats().warm, 1);
    }

    #[test]
    fn sharded_checkout_checkin() {
        let pool = ShardedEnginePool::new(4, 2);
        let cfg = ProcConfig::ultrascalar_i(8);
        let mut e = pool.checkout(&cfg);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().warm, 0, "checked-out engine is owned");
        let prog = ultrascalar_isa::assemble("li r1, 5\nhalt\n", 32).unwrap();
        assert_eq!(e.run(&prog).regs[1], 5);
        pool.checkin(e);
        assert_eq!(pool.stats().warm, 1);
        let _e2 = pool.checkout(&cfg);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.warm), (1, 1, 0));
    }

    #[test]
    fn sharded_pool_concurrent_contention_counts_evictions() {
        let pool = std::sync::Arc::new(ShardedEnginePool::new(2, 2));
        let configs: Vec<ProcConfig> = (0..4).map(|i| ProcConfig::ultrascalar_i(4 << i)).collect();
        let prog = std::sync::Arc::new(ultrascalar_isa::assemble("li r1, 9\nhalt\n", 32).unwrap());
        let mut handles = Vec::new();
        for t in 0..4usize {
            let pool = std::sync::Arc::clone(&pool);
            let configs = configs.clone();
            let prog = std::sync::Arc::clone(&prog);
            handles.push(std::thread::spawn(move || {
                for i in 0..16 {
                    let cfg = &configs[(t + i) % configs.len()];
                    let mut e = pool.checkout(cfg);
                    assert_eq!(e.run(&prog).regs[1], 9);
                    pool.checkin(e);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 4 * 16);
        assert!(s.warm <= 2, "per-shard capacity respected: {}", s.warm);
        assert!(
            s.evictions > 0,
            "4 configs over capacity 2 must evict under contention"
        );
    }
}
