//! A pool of warm [`Ultrascalar`] engines keyed by [`ProcConfig`].
//!
//! Serving mode amortises per-request setup the way the paper's CSPP
//! substrate amortises per-instruction cost across the window: the
//! expensive structures are built once and rewound in place. An engine
//! retains its fetch unit, memory system, window clusters and scan
//! buffers across runs (see [`crate::engine::Ultrascalar`]), so a pool
//! hit turns a request into a pure [`Processor::run_reusing`] call —
//! zero allocations in steady state. Each pooled engine carries its own
//! [`RunResult`] buffer for the same reason.
//!
//! The pool is a small linear-scan LRU: request streams alternate
//! between a handful of configurations, so an exact `ProcConfig`
//! comparison over a few entries beats any hashing scheme — and a
//! config compare allocates nothing.

use crate::config::ProcConfig;
use crate::engine::Ultrascalar;
use crate::processor::{Processor, RunResult};

/// A warm engine with its reusable result buffer.
#[derive(Debug)]
pub struct PooledEngine {
    /// The engine (configuration fixed at pool admission).
    pub engine: Ultrascalar,
    /// Result buffer for [`Processor::run_reusing`]; overwritten by
    /// each run, so read it before the next acquire-and-run.
    pub result: RunResult,
}

impl PooledEngine {
    /// Run `program` on the warm engine into the pooled result buffer
    /// and return a reference to it.
    pub fn run(&mut self, program: &ultrascalar_isa::Program) -> &RunResult {
        self.engine.run_reusing(program, &mut self.result);
        &self.result
    }
}

/// LRU pool of warm engines keyed by exact [`ProcConfig`] equality.
#[derive(Debug)]
pub struct EnginePool {
    entries: Vec<(u64, PooledEngine)>,
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl EnginePool {
    /// Create a pool holding at most `capacity` warm engines.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "engine pool needs capacity");
        EnginePool {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Fetch the warm engine for `cfg`, building one on first use (and
    /// evicting the least recently used engine at capacity). A hit
    /// performs no allocation at all.
    ///
    /// # Panics
    /// Panics if `cfg` is invalid (as [`Ultrascalar::new`] would).
    pub fn acquire(&mut self, cfg: &ProcConfig) -> &mut PooledEngine {
        self.stamp += 1;
        let found = self
            .entries
            .iter()
            .position(|(_, p)| p.engine.config() == cfg);
        let idx = match found {
            Some(i) => {
                self.hits += 1;
                self.entries[i].0 = self.stamp;
                i
            }
            None => {
                self.misses += 1;
                if self.entries.len() == self.capacity {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (stamp, _))| *stamp)
                        .map(|(i, _)| i)
                        .expect("pool non-empty at capacity");
                    self.entries.swap_remove(lru);
                }
                self.entries.push((
                    self.stamp,
                    PooledEngine {
                        engine: Ultrascalar::new(cfg.clone()),
                        result: RunResult::default(),
                    },
                ));
                self.entries.len() - 1
            }
        };
        &mut self.entries[idx].1
    }

    /// Engines currently pooled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the pool empty (no engine warmed yet)?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Acquisitions served by an already-warm engine.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Acquisitions that had to build (or rebuild after eviction) an
    /// engine.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_isa::workload;

    #[test]
    fn hit_reuses_miss_builds() {
        let mut pool = EnginePool::new(2);
        let a = ProcConfig::ultrascalar_i(4);
        let b = ProcConfig::ultrascalar_ii(4);
        pool.acquire(&a);
        assert_eq!((pool.hits(), pool.misses(), pool.len()), (0, 1, 1));
        pool.acquire(&a);
        assert_eq!((pool.hits(), pool.misses(), pool.len()), (1, 1, 1));
        pool.acquire(&b);
        assert_eq!((pool.hits(), pool.misses(), pool.len()), (1, 2, 2));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut pool = EnginePool::new(2);
        let a = ProcConfig::ultrascalar_i(4);
        let b = ProcConfig::ultrascalar_i(8);
        let c = ProcConfig::ultrascalar_i(16);
        pool.acquire(&a);
        pool.acquire(&b);
        pool.acquire(&a); // refresh a: b is now LRU
        pool.acquire(&c); // evicts b
        assert_eq!(pool.len(), 2);
        let before = pool.misses();
        pool.acquire(&a);
        assert_eq!(pool.misses(), before, "a must still be warm");
        pool.acquire(&b);
        assert_eq!(pool.misses(), before + 1, "b was evicted");
    }

    #[test]
    fn pooled_run_matches_fresh_engine() {
        let mut pool = EnginePool::new(1);
        let cfg = ProcConfig::ultrascalar_i(8);
        for (name, prog) in workload::standard_suite(3) {
            let fresh = Ultrascalar::new(cfg.clone()).run(&prog);
            let warm = pool.acquire(&cfg).run(&prog);
            assert_eq!(warm.cycles, fresh.cycles, "{name}");
            assert_eq!(warm.regs, fresh.regs, "{name}");
        }
    }
}
