//! Per-instruction timing records, the Figure 3 ASCII diagram, and a
//! station-occupancy (window) visualiser.

use ultrascalar_isa::{disassemble, Instr};

/// Issue/complete cycles of one committed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrTiming {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static instruction index.
    pub pc: usize,
    /// The instruction.
    pub instr: Instr,
    /// Cycle the instruction entered its execution station.
    pub fetched: u64,
    /// Cycle execution began.
    pub issue: u64,
    /// Cycle at whose end the result entered the datapath.
    pub complete: u64,
    /// Window ring slot (station) the instruction occupied.
    pub slot: usize,
}

impl InstrTiming {
    /// Occupied execution cycles, inclusive.
    pub fn duration(&self) -> u64 {
        self.complete - self.issue + 1
    }

    /// Cycles spent waiting in the station before issue.
    pub fn wait(&self) -> u64 {
        self.issue - self.fetched
    }
}

/// Render the paper's Figure 3: one row per instruction, `.` while
/// waiting for operands, a `=` bar spanning the cycles it executes.
///
/// ```text
/// div  r3, r1, r2   |==========  |
/// add  r0, r0, r3   |..........==|
/// ```
pub fn render_timing_diagram(timings: &[InstrTiming]) -> String {
    if timings.is_empty() {
        return String::from("(no instructions)\n");
    }
    let t_end = timings.iter().map(|t| t.complete).max().unwrap_or(0) + 1;
    let width = t_end as usize;
    let mut out = String::new();
    for t in timings {
        let text = disassemble(&t.instr);
        out.push_str(&format!("{text:<22} |"));
        for c in 0..width as u64 {
            out.push(if c >= t.issue && c <= t.complete {
                '='
            } else if c >= t.fetched && c < t.issue {
                '.'
            } else {
                ' '
            });
        }
        out.push_str("|\n");
    }
    out.push_str(&format!("{:<22}  ", "cycles"));
    for c in 0..width {
        out.push(if c % 5 == 0 {
            char::from_digit((c / 5 % 10) as u32, 10).unwrap_or('?')
        } else {
            '.'
        });
    }
    out.push('\n');
    out
}

/// Render the window as the hardware sees it: one row per execution
/// station (ring slot), time left to right, each instruction shown by a
/// repeating letter (`a` for seq 0, `b` for seq 1, …; uppercase on its
/// issue-to-complete span). Shows the wrap-around reuse of stations —
/// the Ultrascalar I's sliding window, the Ultrascalar II's batch
/// refill, the hybrid's cluster granularity.
pub fn render_station_occupancy(timings: &[InstrTiming], n_slots: usize) -> String {
    if timings.is_empty() {
        return String::from("(no instructions)\n");
    }
    let t_end = timings.iter().map(|t| t.complete).max().unwrap_or(0) + 2;
    let width = t_end as usize;
    let mut grid = vec![vec![' '; width]; n_slots];
    for t in timings {
        let letter = (b'a' + (t.seq % 26) as u8) as char;
        let upper = letter.to_ascii_uppercase();
        if t.slot >= n_slots {
            continue;
        }
        for c in t.fetched..=t.complete {
            let cell = &mut grid[t.slot][c as usize];
            *cell = if c >= t.issue { upper } else { letter };
        }
    }
    let mut out = String::new();
    for (slot, row) in grid.iter().enumerate() {
        out.push_str(&format!("station {slot:>2} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!("{:<10}  ", "cycles"));
    for c in 0..width {
        out.push(if c % 5 == 0 {
            char::from_digit((c / 5 % 10) as u32, 10).unwrap_or('?')
        } else {
            '.'
        });
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_isa::{AluOp, Reg};

    fn t(seq: u64, issue: u64, complete: u64) -> InstrTiming {
        InstrTiming {
            seq,
            pc: seq as usize,
            instr: Instr::Alu {
                op: AluOp::Add,
                rd: Reg(0),
                rs1: Reg(1),
                rs2: Reg(2),
            },
            fetched: issue.saturating_sub(1),
            issue,
            complete,
            slot: seq as usize % 4,
        }
    }

    #[test]
    fn duration_and_wait() {
        assert_eq!(t(0, 3, 3).duration(), 1);
        assert_eq!(t(0, 0, 9).duration(), 10);
        assert_eq!(t(0, 3, 3).wait(), 1);
    }

    #[test]
    fn diagram_bars_span_execution() {
        let d = render_timing_diagram(&[t(0, 0, 2), t(1, 3, 3)]);
        let lines: Vec<&str> = d.lines().collect();
        assert!(lines[0].contains("|=== |"));
        assert!(lines[1].contains("|  .=|"));
        assert!(lines[2].contains("cycles"));
    }

    #[test]
    fn empty_diagram() {
        assert!(render_timing_diagram(&[]).contains("no instructions"));
        assert!(render_station_occupancy(&[], 4).contains("no instructions"));
    }

    #[test]
    fn occupancy_grid_places_instructions_on_their_slots() {
        let d = render_station_occupancy(&[t(0, 1, 2), t(1, 2, 4)], 4);
        let lines: Vec<&str> = d.lines().collect();
        assert!(lines[0].starts_with("station  0"));
        assert!(lines[0].contains('A'), "{d}");
        assert!(lines[1].contains('B'), "{d}");
        // Waiting phase is lowercase.
        assert!(lines[1].contains('b'), "{d}");
    }

    #[test]
    fn occupancy_ignores_out_of_range_slots() {
        let mut x = t(0, 0, 1);
        x.slot = 99;
        let d = render_station_occupancy(&[x], 4);
        assert!(!d.contains('A'));
    }
}
