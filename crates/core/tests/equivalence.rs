//! Architectural-equivalence tests: every processor model must produce
//! exactly the golden interpreter's architectural state, and the
//! Ultrascalar I must be cycle-for-cycle identical to the conventional
//! baseline (the paper's central functional claim).

use proptest::prelude::*;
use ultrascalar::processor::check_against_golden;
use ultrascalar::{BaselineOoO, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_isa::workload::{self, RandomCfg};
use ultrascalar_isa::Program;
use ultrascalar_memsys::{Bandwidth, MemConfig, NetworkKind};

const FUEL: usize = 5_000_000;

fn all_processor_configs(n: usize) -> Vec<ProcConfig> {
    let mut v = vec![ProcConfig::ultrascalar_i(n), ProcConfig::ultrascalar_ii(n)];
    if n >= 4 {
        v.push(ProcConfig::hybrid(n, n / 2));
        if n.is_multiple_of(4) {
            v.push(ProcConfig::hybrid(n, n / 4));
        }
    }
    v
}

fn check(cfg: ProcConfig, program: &Program, label: &str) {
    let mut p = Ultrascalar::new(cfg);
    let result = p.run(program);
    check_against_golden(&result, program, FUEL)
        .unwrap_or_else(|e| panic!("{label} on {}: {e}", p.name()));
}

#[test]
fn all_models_match_golden_on_standard_suite() {
    for (name, prog) in workload::standard_suite(11) {
        for cfg in all_processor_configs(8) {
            check(cfg, &prog, name);
        }
    }
}

#[test]
fn all_models_match_golden_with_imperfect_predictors() {
    for (name, prog) in workload::standard_suite(5) {
        for kind in [
            PredictorKind::NotTaken,
            PredictorKind::Taken,
            PredictorKind::Btfn,
            PredictorKind::Bimodal(64),
        ] {
            for cfg in all_processor_configs(8) {
                check(cfg.with_predictor(kind), &prog, name);
            }
        }
    }
}

#[test]
fn all_models_match_golden_with_constrained_memory() {
    let mem = MemConfig {
        n_leaves: 8,
        bandwidth: Bandwidth::sqrt(),
        banks: 2,
        bank_occupancy: 2,
        hop_latency: 1,
        base_latency: 1,
        words: 1 << 12,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    };
    for (name, prog) in workload::standard_suite(7) {
        for cfg in all_processor_configs(8) {
            check(
                cfg.with_mem(mem.clone())
                    .with_predictor(PredictorKind::Bimodal(32)),
                &prog,
                name,
            );
        }
    }
}

#[test]
fn random_programs_match_golden_across_models_and_windows() {
    for seed in 0..12u64 {
        let prog = workload::random_program(&RandomCfg {
            seed,
            len: 150,
            ..RandomCfg::default()
        });
        for n in [1usize, 2, 4, 8, 16] {
            for cfg in all_processor_configs(n) {
                check(
                    cfg.with_predictor(PredictorKind::Bimodal(16)),
                    &prog,
                    &format!("random seed {seed}"),
                );
            }
        }
    }
}

#[test]
fn window_of_one_still_works() {
    // n = 1 degenerates to an in-order scalar pipeline; everything must
    // still match the golden state.
    for (name, prog) in workload::standard_suite(3) {
        check(ProcConfig::ultrascalar_i(1), &prog, name);
    }
}

/// The paper's functional-equivalence claim: the Ultrascalar I extracts
/// exactly the ILP of a conventional renaming/broadcast out-of-order
/// core. We require *cycle-for-cycle identical* timing.
fn assert_cycle_identical(cfg: ProcConfig, program: &Program, label: &str) {
    let mut us = Ultrascalar::new(cfg.clone());
    let mut base = BaselineOoO::new(cfg);
    let a = us.run(program);
    let b = base.run(program);
    assert_eq!(a.halted, b.halted, "{label}: halted");
    assert_eq!(a.cycles, b.cycles, "{label}: total cycles");
    assert_eq!(a.regs, b.regs, "{label}: registers");
    assert_eq!(a.mem, b.mem, "{label}: memory");
    assert_eq!(
        a.stats.committed, b.stats.committed,
        "{label}: committed count"
    );
    assert_eq!(a.timings.len(), b.timings.len(), "{label}: timing length");
    for (x, y) in a.timings.iter().zip(&b.timings) {
        assert_eq!(x, y, "{label}: instruction timing for seq {}", x.seq);
    }
}

#[test]
fn ultrascalar_i_is_cycle_identical_to_baseline_on_suite() {
    for (name, prog) in workload::standard_suite(13) {
        assert_cycle_identical(ProcConfig::ultrascalar_i(8), &prog, name);
        assert_cycle_identical(ProcConfig::ultrascalar_i(16), &prog, name);
    }
}

#[test]
fn ultrascalar_i_is_cycle_identical_to_baseline_with_mispredictions() {
    for (name, prog) in workload::standard_suite(17) {
        for kind in [PredictorKind::NotTaken, PredictorKind::Bimodal(8)] {
            assert_cycle_identical(
                ProcConfig::ultrascalar_i(8).with_predictor(kind),
                &prog,
                name,
            );
        }
    }
}

#[test]
fn ultrascalar_i_is_cycle_identical_to_baseline_under_memory_pressure() {
    let mem = MemConfig {
        n_leaves: 8,
        bandwidth: Bandwidth::constant(1.0),
        banks: 2,
        bank_occupancy: 3,
        hop_latency: 2,
        base_latency: 1,
        words: 1 << 12,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    };
    for (name, prog) in workload::standard_suite(19) {
        assert_cycle_identical(
            ProcConfig::ultrascalar_i(8)
                .with_mem(mem.clone())
                .with_predictor(PredictorKind::Bimodal(8)),
            &prog,
            name,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_models_match_golden(
        seed in 0u64..10_000,
        n_pow in 0u32..5,
        mem_frac in 0.0f64..0.5,
        branch_frac in 0.0f64..0.2,
    ) {
        let n = 1usize << n_pow;
        let prog = workload::random_program(&RandomCfg {
            seed,
            len: 120,
            mem_frac,
            branch_frac,
            ..RandomCfg::default()
        });
        for cfg in all_processor_configs(n) {
            let mut p = Ultrascalar::new(cfg.with_predictor(PredictorKind::Bimodal(16)));
            let r = p.run(&prog);
            prop_assert!(check_against_golden(&r, &prog, FUEL).is_ok(),
                "{} diverged on seed {seed}", p.name());
        }
    }

    #[test]
    fn prop_usi_cycle_identical_to_baseline(
        seed in 0u64..10_000,
        n_pow in 0u32..5,
    ) {
        let n = 1usize << n_pow;
        let prog = workload::random_program(&RandomCfg {
            seed,
            len: 100,
            ..RandomCfg::default()
        });
        let cfg = ProcConfig::ultrascalar_i(n).with_predictor(PredictorKind::Bimodal(16));
        let a = Ultrascalar::new(cfg.clone()).run(&prog);
        let b = BaselineOoO::new(cfg).run(&prog);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.regs, b.regs);
        prop_assert_eq!(a.timings, b.timings);
    }
}
