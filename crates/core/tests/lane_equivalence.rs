//! Differential tests for lane-parallel batch execution: a batch of up
//! to 64 programs through [`LaneBatcher::run_batch`] must be
//! **byte-identical** — halted flag, cycles, registers, memory, stats,
//! per-instruction timings — to running each program serially through
//! a scalar engine. That is the mode's entire contract: lane batching
//! is a throughput optimisation, never an observable one.
//!
//! The forced-divergence sweep is the adversarial half: random
//! programs with branches and register-indirect memory operands, over
//! lanes seeded with independent random initial registers, so lanes
//! peel off at random steps (different branch directions, different
//! effective addresses). Every peeled lane's result must still match
//! its serial twin bit-for-bit — divergence must be contained, never
//! silently approximated.

use proptest::prelude::*;
use ultrascalar::{
    LaneBatcher, PredictorKind, ProcConfig, Processor, RunResult, Ultrascalar, MAX_LANES,
};
use ultrascalar_isa::{workload, AluOp, BranchCond, Instr, Program, Reg};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Random terminating program in the packed_equivalence style, with
/// the operand mix skewed toward the divergence sources: branches on
/// arbitrary registers and register-indirect loads/stores.
fn random_program(rng: &mut Rng, nregs: usize) -> Program {
    let len = 12 + rng.below(20) as usize;
    let mut instrs = Vec::new();
    for i in 0..len {
        let r = |rng: &mut Rng| Reg(rng.below(nregs as u64) as u8);
        match rng.below(10) {
            0..=1 => instrs.push(Instr::AluImm {
                op: [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Srl][rng.below(4) as usize],
                rd: r(rng),
                rs1: r(rng),
                imm: rng.below(32) as i32,
            }),
            2..=3 => instrs.push(Instr::Alu {
                op: [
                    AluOp::Add,
                    AluOp::Mul,
                    AluOp::And,
                    AluOp::Div,
                    AluOp::Sll,
                    AluOp::Sltu,
                ][rng.below(6) as usize],
                rd: r(rng),
                rs1: r(rng),
                rs2: r(rng),
            }),
            4..=5 => instrs.push(Instr::Load {
                rd: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            6 => instrs.push(Instr::Store {
                src: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            7 => instrs.push(Instr::LoadImm {
                rd: r(rng),
                imm: rng.below(64) as i32,
            }),
            8..=9 => {
                // Forward branch only (termination guaranteed).
                let tgt = (i as u64 + 1 + rng.below(4)).min(len as u64) as u32;
                instrs.push(Instr::Branch {
                    cond: [
                        BranchCond::Eq,
                        BranchCond::Ne,
                        BranchCond::Lt,
                        BranchCond::Geu,
                    ][rng.below(4) as usize],
                    rs1: r(rng),
                    rs2: r(rng),
                    target: tgt,
                });
            }
            _ => instrs.push(Instr::Nop),
        }
    }
    instrs.push(Instr::Halt);
    Program {
        instrs,
        num_regs: nregs,
        init_regs: vec![0; nregs],
        init_mem: (0..32).map(|x| x as u32 * 7 + 2).collect(),
    }
}

/// Serial ground truth: each program through a fresh scalar engine.
fn serial_runs(cfg: &ProcConfig, programs: &[Program]) -> Vec<RunResult> {
    programs
        .iter()
        .map(|p| Ultrascalar::new(cfg.clone()).run(p))
        .collect()
}

fn assert_identical(got: &RunResult, want: &RunResult, ctx: &str) {
    // Lane batching must never push any configuration — pipelined
    // forwarding included — off the packed path.
    assert_eq!(got.stats.packed_fallbacks, 0, "{ctx}: fallback counter");
    assert_eq!(got.halted, want.halted, "{ctx}: halted");
    assert_eq!(got.cycles, want.cycles, "{ctx}: cycles");
    assert_eq!(got.regs, want.regs, "{ctx}: registers");
    assert_eq!(got.mem, want.mem, "{ctx}: memory");
    assert_eq!(got.stats, want.stats, "{ctx}: stats");
    assert_eq!(got.timings, want.timings, "{ctx}: timings");
}

/// Run one group both ways and compare every lane.
fn check_batch(batcher: &mut LaneBatcher, cfg: &ProcConfig, programs: &[Program], ctx: &str) {
    let golden = serial_runs(cfg, programs);
    let refs: Vec<&Program> = programs.iter().collect();
    let mut out = vec![RunResult::default(); programs.len()];
    let mut engine = Ultrascalar::new(cfg.clone());
    batcher.run_batch(&mut engine, &refs, &mut out);
    for (l, (got, want)) in out.iter().zip(golden.iter()).enumerate() {
        assert_identical(got, want, &format!("{ctx} lane {l}"));
    }
}

#[test]
fn standard_kernel_suite_matches_serial() {
    // Every named kernel, vectorized over lanes with independent
    // random initial registers, across the three paper architectures —
    // plus pipelined forwarding, which lane-batches on the hop-banded
    // packed path like any other configuration.
    let configs = [
        ("usi", ProcConfig::ultrascalar_i(16)),
        // The usii and pipelined shapes are gated off the packed path
        // by default; the override applies to both the batched run and
        // its serial twin, keeping the comparison meaningful while the
        // packed machinery stays under test.
        (
            "usii",
            ProcConfig::ultrascalar_ii(16).with_packed_override(),
        ),
        ("hybrid", ProcConfig::hybrid(16, 4)),
        (
            "usi-pipelined",
            ProcConfig::ultrascalar_i(16)
                .with_forwarding(ultrascalar::ForwardModel::Pipelined { per_hop: 1 })
                .with_packed_override(),
        ),
    ];
    for (name, cfg) in &configs {
        let mut batcher = LaneBatcher::new();
        for (kernel, prog) in workload::standard_suite(7) {
            let programs = workload::lane_variants(&prog, 6, 0x1A5E5);
            check_batch(&mut batcher, cfg, &programs, &format!("{name}/{kernel}"));
        }
    }
}

#[test]
fn full_width_batch_matches_serial() {
    // All 64 lanes at once on a seed-sensitive serial chain.
    let cfg = ProcConfig::ultrascalar_i(16);
    let programs = workload::lane_variants(&workload::fibonacci(12), MAX_LANES, 99);
    let mut batcher = LaneBatcher::new();
    check_batch(&mut batcher, &cfg, &programs, "fib64");
    let stats = *batcher.stats();
    assert_eq!(stats.batches, 1, "group must lane-batch");
    assert_eq!(
        stats.lane_runs + stats.peels,
        MAX_LANES as u64,
        "every lane accounted for"
    );
}

#[test]
fn forced_divergence_random_sweep_is_bit_exact() {
    // The adversarial sweep: random programs, random per-lane seeds,
    // so lanes diverge (branch directions, effective addresses) at
    // random steps. Byte-identical results required regardless of how
    // many lanes peel. Includes a Bimodal config where the leader run
    // usually mispredicts, exercising epoch-segmented replay across
    // the leader's flush boundaries.
    let mut rng = Rng(0xD17E5 ^ 0xFFFF_0000_0000);
    let configs = [
        ("usi-perfect", ProcConfig::ultrascalar_i(8)),
        (
            "usi-bimodal",
            ProcConfig::ultrascalar_i(8).with_predictor(PredictorKind::Bimodal(16)),
        ),
        ("hybrid-perfect", ProcConfig::hybrid(16, 4)),
        (
            "usi-pipelined",
            ProcConfig::ultrascalar_i(8)
                .with_forwarding(ultrascalar::ForwardModel::Pipelined { per_hop: 1 })
                .with_packed_override(),
        ),
    ];
    let mut batchers: Vec<LaneBatcher> = configs.iter().map(|_| LaneBatcher::new()).collect();
    for iter in 0..60 {
        let prog = random_program(&mut rng, 6);
        if prog.validate().is_err() {
            continue;
        }
        let n = [2, 3, 9, 31][iter % 4];
        let programs = workload::lane_variants(&prog, n, rng.next());
        for ((name, cfg), batcher) in configs.iter().zip(batchers.iter_mut()) {
            check_batch(
                batcher,
                cfg,
                &programs,
                &format!("iter {iter} {name} n={n}"),
            );
        }
    }
    // The sweep must actually have exercised both the lock-step path
    // and divergence peeling, or it is testing nothing.
    let perfect = batchers[0].stats();
    assert!(perfect.batches > 0, "no group ever lane-batched");
    assert!(perfect.peels > 0, "no lane ever peeled");
}

/// A parameterised branchy loop in the `branch_gauntlet`/`spec_storm`
/// mould: shared `.word` data drives both a data-dependent diamond and
/// a `div`-delayed `beq` that mispredicts on every zero word under a
/// bimodal predictor, and the mispredict's wrong path probes the
/// per-lane register `r9` — so a batch splits into epochs at the
/// leader's flushes and lanes whose probe side differs from the
/// leader's peel during replay.
fn branchy_loop(iters: u32, data_seed: u64) -> Program {
    let words: Vec<String> = (0..8u64)
        .map(|i| {
            let mut v =
                (data_seed ^ (i.wrapping_mul(0x9E3779B97F4A7C15))).wrapping_mul(0xBF58476D1CE4E5B9);
            v ^= v >> 31;
            // ~1/4 zeros (the beq mispredicts), the rest a small mixed
            // odd/even spread (the diamond direction varies).
            if v.is_multiple_of(4) {
                "0".to_string()
            } else {
                ((v % 99_989) as u32 + 1).to_string()
            }
        })
        .collect();
    let src = format!(
        r"
            .word {words}
            li   r3, {iters}
            li   r7, 7
            li   r13, -16777216 ; 0xFF00_0000: the wrong-path probe threshold
            li   r15, 1
            li   r8, 0
        loop:
            and  r10, r8, r7
            lw   r4, (r10)
            div  r14, r4, r15   ; delays the beq so the wrong path runs long
            beq  r14, r0, skip  ; mispredicts on every zero word
            andi r11, r4, 1
            beq  r11, r0, even  ; shared-data diamond
            add  r2, r2, r4
            j    join
        even:
            sub  r2, r2, r4
        join:
            sltu r5, r0, r4
            subi r6, r5, 1      ; all-ones only on the zero-word wrong path
            and  r12, r9, r6
            bltu r12, r13, skip ; wrong-path probe of the per-lane r9
            add  r2, r2, r13
        skip:
            add  r2, r2, r4
            addi r8, r8, 1
            subi r3, r3, 1
            bne  r3, r0, loop
            halt
        ",
        words = words.join(", ")
    );
    ultrascalar_isa::asm::assemble(&src, 16).expect("branchy_loop assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The ISSUE's pinned sweep: bimodal configs × branchy programs ×
    /// batch {3, 64}, every lane byte-identical to its serial twin —
    /// registers, memory, cycles, stats, timings — however the epochs
    /// segment and however many lanes peel mid-replay.
    #[test]
    fn bimodal_branchy_batches_match_serial(
        seed in any::<u64>(),
        data_seed in any::<u64>(),
        iters in 4u32..20,
        table_bits in 2u32..7,
        arch in 0usize..3,
        random_prog in any::<bool>(),
    ) {
        let pred = PredictorKind::Bimodal(1usize << table_bits);
        let (name, cfg) = match arch {
            0 => ("usi", ProcConfig::ultrascalar_i(16).with_predictor(pred)),
            1 => (
                "usii",
                ProcConfig::ultrascalar_ii(16)
                    .with_packed_override()
                    .with_predictor(pred),
            ),
            _ => ("hybrid", ProcConfig::hybrid(16, 4).with_predictor(pred)),
        };
        let prog = if random_prog {
            random_program(&mut Rng(data_seed | 1), 6)
        } else {
            branchy_loop(iters, data_seed)
        };
        if prog.validate().is_err() {
            return Ok(());
        }
        let mut batcher = LaneBatcher::new();
        for b in [3usize, 64] {
            let programs = workload::lane_variants(&prog, b, seed);
            check_batch(&mut batcher, &cfg, &programs, &format!("{name}/b={b}"));
        }
        let stats = *batcher.stats();
        // Both groups (b=3 and b=64) either lane-batched or demoted
        // with the demotion counted; batched groups account for every
        // lane as a lock-step run or a peel.
        prop_assert_eq!(stats.batches + stats.fallbacks, 2, "{:?}", stats);
        prop_assert!(stats.lane_runs + stats.peels <= 67, "{:?}", stats);
        prop_assert!(stats.replay_peels <= stats.peels, "{:?}", stats);
        // A batched branchy run must actually segment: the kernel's
        // zero words force leader mispredicts under every bimodal
        // table size.
        if !random_prog && stats.batches > 0 {
            prop_assert!(stats.epochs > stats.batches, "{:?}", stats);
        }
    }
}

#[test]
fn single_divergent_lane_peels_at_epoch_boundary() {
    // The directed shape from the ISSUE: exactly one lane's branch
    // direction diverges at an epoch boundary. Data word 5 is the only
    // zero, so the div-delayed `beq` mispredicts exactly there (the
    // seven nonzero words train the counter not-taken); the wrong path
    // probes `bltu r9, threshold`, and only lane 2's `r9` sits above
    // the threshold — its direction differs from the leader's, it
    // peels during replay, and every other lane rides the batch across
    // the boundary.
    let src = r"
            .word 3, 9, 5, 7, 11, 0, 13, 17
            li   r3, 8
            li   r7, 7
            li   r13, -16777216 ; 0xFF00_0000: the probe threshold
            li   r15, 1
            li   r8, 0
        loop:
            and  r10, r8, r7
            lw   r4, (r10)
            div  r14, r4, r15
            beq  r14, r0, skip  ; mispredicts only at the zero word
            sltu r5, r0, r4
            subi r6, r5, 1
            and  r12, r9, r6
            bltu r12, r13, skip ; wrong path: probes the per-lane r9
            add  r2, r2, r13
        skip:
            add  r2, r2, r4
            addi r8, r8, 1
            subi r3, r3, 1
            bne  r3, r0, loop
            halt
        ";
    let base = ultrascalar_isa::asm::assemble(src, 16).expect("directed kernel assembles");
    let programs: Vec<Program> = (0..4)
        .map(|l| {
            let mut p = base.clone();
            p.init_regs[9] = if l == 2 { 0xFF00_0001 } else { l };
            p.init_regs[2] = 100 + l; // distinct per-lane results
            p
        })
        .collect();
    let cfg = ProcConfig::ultrascalar_i(16).with_predictor(PredictorKind::Bimodal(64));
    let mut batcher = LaneBatcher::new();
    check_batch(&mut batcher, &cfg, &programs, "directed divergence");
    let stats = *batcher.stats();
    assert_eq!(stats.batches, 1, "the group must lane-batch: {stats:?}");
    assert_eq!(stats.fallbacks, 0, "no serial demotion: {stats:?}");
    assert!(
        stats.epochs >= 2,
        "the mispredict splits the run: {stats:?}"
    );
    assert_eq!(stats.peels, 1, "exactly lane 2 diverges: {stats:?}");
    assert_eq!(
        stats.replay_peels, 1,
        "the divergence is at the boundary replay, not the committed path: {stats:?}"
    );
    assert_eq!(
        stats.lane_runs, 3,
        "the other lanes ride the batch: {stats:?}"
    );
}

#[test]
fn identical_lanes_fully_converge() {
    // The serve smoke-test shape: N identical requests. No lane can
    // peel, and every lane's result equals the leader's.
    let cfg = ProcConfig::ultrascalar_i(8);
    let prog = workload::dot_product(24);
    let programs: Vec<Program> = (0..5).map(|_| prog.clone()).collect();
    let mut batcher = LaneBatcher::new();
    check_batch(&mut batcher, &cfg, &programs, "identical");
    let stats = *batcher.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.lane_runs, 5);
    assert_eq!(stats.peels, 0);
    assert_eq!(stats.fallbacks, 0);
}

#[test]
fn incompatible_groups_fall_back_serially() {
    // Different instruction streams cannot share a pass; the group
    // must fall back to serial runs with the fallback counted — and
    // still be byte-identical.
    let cfg = ProcConfig::ultrascalar_i(8);
    let a = workload::fibonacci(10);
    let b = workload::dot_product(16);
    let programs = vec![a.clone(), b, a];
    let mut batcher = LaneBatcher::new();
    check_batch(&mut batcher, &cfg, &programs, "mixed");
    let stats = *batcher.stats();
    assert_eq!(stats.batches, 0);
    assert_eq!(stats.fallbacks, 1);
    assert_eq!(stats.lane_runs, 0);
}

#[test]
fn batch_of_one_short_circuits() {
    let cfg = ProcConfig::ultrascalar_i(8);
    let programs = vec![workload::fibonacci(10)];
    let mut batcher = LaneBatcher::new();
    check_batch(&mut batcher, &cfg, &programs, "single");
    assert_eq!(*batcher.stats(), Default::default(), "no counters move");
}

#[test]
fn warm_batcher_reruns_are_identical() {
    // The same batcher across many groups (the serve usage pattern):
    // scratch reuse must never leak state between batches.
    let cfg = ProcConfig::ultrascalar_i(16);
    let mut batcher = LaneBatcher::new();
    let mut engine = Ultrascalar::new(cfg.clone());
    let programs = workload::lane_variants(&workload::memcpy(16), 8, 5);
    let refs: Vec<&Program> = programs.iter().collect();
    let golden = serial_runs(&cfg, &programs);
    let mut out = vec![RunResult::default(); programs.len()];
    for round in 0..3 {
        // Interleave an unrelated group so scratch is dirty.
        let other = workload::lane_variants(&workload::sieve(20), 3, round as u64);
        let other_refs: Vec<&Program> = other.iter().collect();
        let mut other_out = vec![RunResult::default(); other.len()];
        batcher.run_batch(&mut engine, &other_refs, &mut other_out);
        batcher.run_batch(&mut engine, &refs, &mut out);
        for (l, (got, want)) in out.iter().zip(golden.iter()).enumerate() {
            assert_identical(got, want, &format!("round {round} lane {l}"));
        }
    }
}
