//! Differential test for the packed word-parallel flag networks: every
//! configuration must produce bit-identical results (cycles, registers,
//! memory, statistics) with `packed_flags` on and off, across random
//! straight-line and loop programs. The packed path is a pure
//! representation change — lane-packed all-earlier AND flags and a
//! per-register writer-readiness bitset gating blocked stations — so
//! any observable divergence is a bug.
//!
//! Register-file widths cover every lane-word regime of the multi-word
//! readiness mask: 6 (one word, the MIPS-sized corner), 65 (first lane
//! of the second word), 128 (exact two-word boundary) and 256 (the
//! ISA's maximum, all four words live).

use ultrascalar::{ForwardModel, LatencyModel, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_isa::{AluOp, BranchCond, Instr, Program, Reg};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_program(rng: &mut Rng, nregs: usize) -> Program {
    let len = 12 + rng.below(20) as usize;
    let mut instrs = Vec::new();
    for i in 0..len {
        let r = |rng: &mut Rng| Reg(rng.below(nregs as u64) as u8);
        match rng.below(10) {
            0..=2 => instrs.push(Instr::AluImm {
                op: [AluOp::Add, AluOp::Sub, AluOp::Xor][rng.below(3) as usize],
                rd: r(rng),
                rs1: r(rng),
                imm: rng.below(32) as i32,
            }),
            3..=4 => instrs.push(Instr::Alu {
                op: [AluOp::Add, AluOp::Mul, AluOp::And, AluOp::Div][rng.below(4) as usize],
                rd: r(rng),
                rs1: r(rng),
                rs2: r(rng),
            }),
            5 => instrs.push(Instr::Load {
                rd: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            6 => instrs.push(Instr::Store {
                src: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            7 => instrs.push(Instr::LoadImm {
                rd: r(rng),
                imm: rng.below(64) as i32,
            }),
            8 => {
                // Forward branch only (termination guaranteed).
                let tgt = (i as u64 + 1 + rng.below(4)).min(len as u64) as u32;
                instrs.push(Instr::Branch {
                    cond: [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt][rng.below(3) as usize],
                    rs1: r(rng),
                    rs2: r(rng),
                    target: tgt,
                });
            }
            _ => instrs.push(Instr::Nop),
        }
    }
    instrs.push(Instr::Halt);
    Program {
        instrs,
        num_regs: nregs,
        init_regs: (0..nregs as u32).map(|x| x * 3 + 1).collect(),
        init_mem: (0..32).map(|x| x as u32 * 7 + 2).collect(),
    }
}

/// The configurations under test: all the feature interactions the
/// packed gate touches (renaming store re-resolution, shared ALUs,
/// finite memory, trace cache, fetch caps) plus a pipelined-forwarding
/// configuration, where the packed path must hold via the hop-banded
/// readiness words — reader-dependent readiness is no longer a
/// fallback condition.
fn configs(lat: LatencyModel) -> Vec<(&'static str, ProcConfig)> {
    vec![
        (
            "us1-plain",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_latency(lat),
        ),
        (
            // Realistic memory is a losing shape for the packed path
            // (latency-dominated), so the shape gate would silently run
            // it scalar; the override keeps the differential coverage.
            "us1-renaming-realmem",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_memory_renaming()
                .with_mem(ultrascalar_memsys::MemConfig::realistic(8, 1 << 16))
                .with_packed_override()
                .with_latency(lat),
        ),
        (
            "hybrid-all",
            ProcConfig::hybrid(16, 4)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_memory_renaming()
                .with_shared_alus(2)
                .with_trace_cache(1, 3)
                .with_fetch_width(3)
                .with_latency(lat),
        ),
        (
            // Pipelined forwarding (and cluster == window) are both
            // shape-gated off by default; force the banded packed path
            // so the hop-band machinery stays under differential test.
            "us2-pipelined",
            ProcConfig::ultrascalar_ii(8)
                .with_predictor(PredictorKind::NotTaken)
                .with_forwarding(ForwardModel::Pipelined { per_hop: 2 })
                .with_memory_renaming()
                .with_packed_override()
                .with_latency(lat),
        ),
        (
            "us1-noskip",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Taken)
                .with_shared_alus(1)
                .without_cycle_skipping()
                .with_latency(lat),
        ),
    ]
}

fn differential_sweep(seed: u64, nregs: usize, iters: u32) {
    let mut rng = Rng(seed);
    let lat = LatencyModel {
        branch: 2,
        ..LatencyModel::default()
    };
    for iter in 0..iters {
        let prog = random_program(&mut rng, nregs);
        if prog.validate().is_err() {
            continue;
        }
        for (name, cfg) in configs(lat) {
            assert!(cfg.packed_flags, "packed flags must default on");
            let packed = Ultrascalar::new(cfg.clone()).run(&prog);
            let legacy = Ultrascalar::new(cfg.without_packed_flags()).run(&prog);
            // No config corner may fall back any more: the hop-banded
            // readiness words keep pipelined forwarding on the packed
            // path, and the multi-word lanes cover every register-file
            // width the ISA can express. Zero fallbacks, cycle-exact,
            // stats compared whole.
            assert_eq!(
                packed.stats.packed_fallbacks, 0,
                "iter {iter} {name} L={nregs}: fallback counter"
            );
            assert_eq!(
                legacy.stats.packed_fallbacks, 0,
                "iter {iter} {name} L={nregs}: scalar run must not count fallbacks"
            );
            let ps = packed.stats.clone();
            let ls = legacy.stats.clone();
            assert_eq!(
                packed.cycles, legacy.cycles,
                "iter {iter} {name} L={nregs}: cycle mismatch"
            );
            assert_eq!(
                packed.halted, legacy.halted,
                "iter {iter} {name} L={nregs}: halted"
            );
            assert_eq!(
                packed.regs, legacy.regs,
                "iter {iter} {name} L={nregs}: regs"
            );
            assert_eq!(
                packed.mem, legacy.mem,
                "iter {iter} {name} L={nregs}: memory"
            );
            assert_eq!(ps, ls, "iter {iter} {name} L={nregs}: stats");
            assert_eq!(
                packed.timings, legacy.timings,
                "iter {iter} {name} L={nregs}: timings"
            );
        }
    }
}

#[test]
fn packed_flags_match_legacy_path() {
    differential_sweep(0xBADC0DE5, 6, 250);
}

#[test]
fn packed_flags_match_legacy_path_65_regs() {
    differential_sweep(0x65BEEF01, 65, 100);
}

#[test]
fn packed_flags_match_legacy_path_128_regs() {
    differential_sweep(0x128ABCDE, 128, 100);
}

#[test]
fn packed_flags_match_legacy_path_256_regs() {
    differential_sweep(0x256FEED2, 256, 100);
}

/// The `force_swar` config knob pins the portable SWAR substrate for
/// the whole run (the field-debugging escape hatch behind
/// `USIM_FORCE_SWAR`); dispatch may change cost, never a result, so a
/// forced run must be byte-identical to the native one — cycles,
/// registers, memory, stats, timings.
#[test]
fn force_swar_runs_are_byte_identical() {
    let mut rng = Rng(0x5AFE_5115);
    let lat = LatencyModel {
        branch: 2,
        ..LatencyModel::default()
    };
    for iter in 0..40u32 {
        let prog = random_program(&mut rng, 65);
        if prog.validate().is_err() {
            continue;
        }
        for (name, cfg) in configs(lat) {
            let native = Ultrascalar::new(cfg.clone()).run(&prog);
            let forced = Ultrascalar::new(cfg.with_force_swar()).run(&prog);
            assert_eq!(native.cycles, forced.cycles, "iter {iter} {name}: cycles");
            assert_eq!(native.regs, forced.regs, "iter {iter} {name}: regs");
            assert_eq!(native.mem, forced.mem, "iter {iter} {name}: memory");
            assert_eq!(native.stats, forced.stats, "iter {iter} {name}: stats");
            assert_eq!(
                native.timings, forced.timings,
                "iter {iter} {name}: timings"
            );
        }
    }
}

/// A tiny blocked-heavy program over `nregs` registers that exercises
/// high-register forwarding (the last writer and reader live past lane
/// word 0 when `nregs > 64`).
fn high_reg_chain(nregs: usize) -> Program {
    let hi = (nregs - 1) as u8;
    let instrs = vec![
        Instr::LoadImm {
            rd: Reg(hi),
            imm: 41,
        },
        Instr::Alu {
            op: AluOp::Mul,
            rd: Reg(hi),
            rs1: Reg(hi),
            rs2: Reg(hi),
        },
        Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(0),
            rs1: Reg(hi),
            imm: 1,
        },
        Instr::Halt,
    ];
    Program::new(instrs, nregs)
}

/// Regression test for the fallback diagnostic: at `num_regs = 65` the
/// single-cycle gate must *stay packed* (counter clean — this is the
/// width that used to fall back when the unready lanes lived in one
/// `u64`), and a pipelined-forwarding run at the same width must now
/// *also* stay packed (zero fallbacks — the hop-banded readiness words
/// closed what used to be the one remaining scalar downgrade) and
/// still compute the same result, cycle-exact against the scalar
/// resolve.
#[test]
fn fallback_diagnostic_fires_only_when_gate_drops() {
    for nregs in [65usize, 128, 256] {
        let prog = high_reg_chain(nregs);
        prog.validate().expect("chain validates");

        let single = Ultrascalar::new(ProcConfig::ultrascalar_i(8)).run(&prog);
        assert_eq!(
            single.stats.packed_fallbacks, 0,
            "L={nregs}: single-cycle forwarding must keep the packed path"
        );
        assert_eq!(single.regs[0], 41 * 41 + 1);

        let cfg = ProcConfig::ultrascalar_i(8)
            .with_forwarding(ForwardModel::Pipelined { per_hop: 1 })
            .with_packed_override();
        let piped = Ultrascalar::new(cfg.clone()).run(&prog);
        assert_eq!(
            piped.stats.packed_fallbacks, 0,
            "L={nregs}: pipelined forwarding must ride the banded packed path"
        );
        assert_eq!(piped.regs[0], 41 * 41 + 1);

        // And cycle-exact against the retained scalar resolve.
        let scalar = Ultrascalar::new(cfg.without_packed_flags()).run(&prog);
        assert_eq!(scalar.stats.packed_fallbacks, 0);
        assert_eq!(piped.cycles, scalar.cycles, "L={nregs}: cycles");
        assert_eq!(piped.regs, scalar.regs, "L={nregs}: regs");
        assert_eq!(piped.stats, scalar.stats, "L={nregs}: stats");
        assert_eq!(piped.timings, scalar.timings, "L={nregs}: timings");
    }
}
