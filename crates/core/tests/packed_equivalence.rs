//! Differential test for the packed word-parallel flag networks: every
//! configuration must produce bit-identical results (cycles, registers,
//! memory, statistics) with `packed_flags` on and off, across random
//! straight-line and loop programs. The packed path is a pure
//! representation change — lane-packed all-earlier AND flags and a
//! per-register writer-readiness bitset gating blocked stations — so
//! any observable divergence is a bug.

use ultrascalar::{ForwardModel, LatencyModel, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_isa::{AluOp, BranchCond, Instr, Program, Reg};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_program(rng: &mut Rng) -> Program {
    let len = 12 + rng.below(20) as usize;
    let nregs = 6;
    let mut instrs = Vec::new();
    for i in 0..len {
        let r = |rng: &mut Rng| Reg(rng.below(nregs as u64) as u8);
        match rng.below(10) {
            0..=2 => instrs.push(Instr::AluImm {
                op: [AluOp::Add, AluOp::Sub, AluOp::Xor][rng.below(3) as usize],
                rd: r(rng),
                rs1: r(rng),
                imm: rng.below(32) as i32,
            }),
            3..=4 => instrs.push(Instr::Alu {
                op: [AluOp::Add, AluOp::Mul, AluOp::And, AluOp::Div][rng.below(4) as usize],
                rd: r(rng),
                rs1: r(rng),
                rs2: r(rng),
            }),
            5 => instrs.push(Instr::Load {
                rd: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            6 => instrs.push(Instr::Store {
                src: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            7 => instrs.push(Instr::LoadImm {
                rd: r(rng),
                imm: rng.below(64) as i32,
            }),
            8 => {
                // Forward branch only (termination guaranteed).
                let tgt = (i as u64 + 1 + rng.below(4)).min(len as u64) as u32;
                instrs.push(Instr::Branch {
                    cond: [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt][rng.below(3) as usize],
                    rs1: r(rng),
                    rs2: r(rng),
                    target: tgt,
                });
            }
            _ => instrs.push(Instr::Nop),
        }
    }
    instrs.push(Instr::Halt);
    Program {
        instrs,
        num_regs: nregs,
        init_regs: (0..nregs as u32).map(|x| x * 3 + 1).collect(),
        init_mem: (0..32).map(|x| x as u32 * 7 + 2).collect(),
    }
}

/// The configurations under test: all the feature interactions the
/// packed gate touches (renaming store re-resolution, shared ALUs,
/// finite memory, trace cache, fetch caps) plus a pipelined-forwarding
/// configuration, where `packed_flags` must silently fall back to the
/// scalar path because readiness is reader-dependent.
fn configs(lat: LatencyModel) -> Vec<(&'static str, ProcConfig)> {
    vec![
        (
            "us1-plain",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_latency(lat),
        ),
        (
            "us1-renaming-realmem",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_memory_renaming()
                .with_mem(ultrascalar_memsys::MemConfig::realistic(8, 1 << 16))
                .with_latency(lat),
        ),
        (
            "hybrid-all",
            ProcConfig::hybrid(16, 4)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_memory_renaming()
                .with_shared_alus(2)
                .with_trace_cache(1, 3)
                .with_fetch_width(3)
                .with_latency(lat),
        ),
        (
            "us2-pipelined",
            ProcConfig::ultrascalar_ii(8)
                .with_predictor(PredictorKind::NotTaken)
                .with_forwarding(ForwardModel::Pipelined { per_hop: 2 })
                .with_memory_renaming()
                .with_latency(lat),
        ),
        (
            "us1-noskip",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Taken)
                .with_shared_alus(1)
                .without_cycle_skipping()
                .with_latency(lat),
        ),
    ]
}

#[test]
fn packed_flags_match_legacy_path() {
    let mut rng = Rng(0xBADC0DE5);
    let lat = LatencyModel {
        branch: 2,
        ..LatencyModel::default()
    };
    for iter in 0..250u32 {
        let prog = random_program(&mut rng);
        if prog.validate().is_err() {
            continue;
        }
        for (name, cfg) in configs(lat) {
            assert!(cfg.packed_flags, "packed flags must default on");
            let packed = Ultrascalar::new(cfg.clone()).run(&prog);
            let legacy = Ultrascalar::new(cfg.without_packed_flags()).run(&prog);
            assert_eq!(
                packed.cycles, legacy.cycles,
                "iter {iter} {name}: cycle mismatch"
            );
            assert_eq!(packed.halted, legacy.halted, "iter {iter} {name}: halted");
            assert_eq!(packed.regs, legacy.regs, "iter {iter} {name}: regs");
            assert_eq!(packed.mem, legacy.mem, "iter {iter} {name}: memory");
            assert_eq!(packed.stats, legacy.stats, "iter {iter} {name}: stats");
            assert_eq!(
                packed.timings, legacy.timings,
                "iter {iter} {name}: timings"
            );
        }
    }
}
