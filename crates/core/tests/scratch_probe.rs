use ultrascalar::{
    BaselineOoO, ForwardModel, LatencyModel, PredictorKind, ProcConfig, Processor, Ultrascalar,
};
use ultrascalar_isa::{AluOp, BranchCond, Instr, Interp, Program, Reg};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_program(rng: &mut Rng) -> Program {
    let len = 12 + rng.below(20) as usize;
    let nregs = 6;
    let mut instrs = Vec::new();
    for i in 0..len {
        let r = |rng: &mut Rng| Reg(rng.below(nregs as u64) as u8);
        match rng.below(10) {
            0..=2 => instrs.push(Instr::AluImm {
                op: [AluOp::Add, AluOp::Sub, AluOp::Xor][rng.below(3) as usize],
                rd: r(rng),
                rs1: r(rng),
                imm: rng.below(32) as i32,
            }),
            3..=4 => instrs.push(Instr::Alu {
                op: [AluOp::Add, AluOp::Mul, AluOp::And, AluOp::Div][rng.below(4) as usize],
                rd: r(rng),
                rs1: r(rng),
                rs2: r(rng),
            }),
            5 => instrs.push(Instr::Load {
                rd: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            6 => instrs.push(Instr::Store {
                src: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            7 => instrs.push(Instr::LoadImm {
                rd: r(rng),
                imm: rng.below(64) as i32,
            }),
            8 => {
                // forward branch only (termination)
                let tgt = (i as u64 + 1 + rng.below(4)).min(len as u64) as u32;
                instrs.push(Instr::Branch {
                    cond: [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt][rng.below(3) as usize],
                    rs1: r(rng),
                    rs2: r(rng),
                    target: tgt,
                });
            }
            _ => instrs.push(Instr::Nop),
        }
    }
    instrs.push(Instr::Halt);
    let n = instrs.len();
    Program {
        instrs,
        num_regs: nregs,
        init_regs: (0..nregs as u32).map(|x| x * 3 + 1).collect(),
        init_mem: (0..32).map(|x| x as u32 * 7 + 2).collect(),
    }
    .tap_len(n)
}

trait Tap {
    fn tap_len(self, _n: usize) -> Self
    where
        Self: Sized,
    {
        self
    }
}
impl Tap for Program {}

// Structured random loop programs: r5 is a loop counter initialised to a
// small value; loops decrement it and branch backwards while nonzero.
fn random_loop_program(rng: &mut Rng) -> Program {
    let nregs = 6u8;
    let mut instrs: Vec<Instr> = Vec::new();
    // r5 = counter
    instrs.push(Instr::LoadImm {
        rd: Reg(5),
        imm: 2 + rng.below(5) as i32,
    });
    let loop_head = instrs.len();
    let body = 4 + rng.below(8) as usize;
    for _ in 0..body {
        // Sources may read any register, but destinations must avoid
        // both r5 (the counter) AND r0: the exit branch is
        // `Ne r5, r0` and relies on r0 holding its initial zero. A
        // body write to r0 (as the seed generator allowed) makes the
        // loop's termination depend on chaotic Div feedback and the
        // generated program can simply never halt — which is what the
        // engine then faithfully simulates.
        let dst = |rng: &mut Rng| Reg(1 + rng.below(4) as u8);
        let r = |rng: &mut Rng| Reg(rng.below(5) as u8);
        match rng.below(8) {
            0..=2 => instrs.push(Instr::AluImm {
                op: [AluOp::Add, AluOp::Sub, AluOp::Xor][rng.below(3) as usize],
                rd: dst(rng),
                rs1: r(rng),
                imm: rng.below(32) as i32,
            }),
            3 => instrs.push(Instr::Alu {
                op: [AluOp::Add, AluOp::Mul, AluOp::Div][rng.below(3) as usize],
                rd: dst(rng),
                rs1: r(rng),
                rs2: r(rng),
            }),
            4 => instrs.push(Instr::Load {
                rd: dst(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            5 => instrs.push(Instr::Store {
                src: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            _ => instrs.push(Instr::LoadImm {
                rd: dst(rng),
                imm: rng.below(64) as i32,
            }),
        }
    }
    // counter decrement + backward branch
    instrs.push(Instr::AluImm {
        op: AluOp::Sub,
        rd: Reg(5),
        rs1: Reg(5),
        imm: 1,
    });
    instrs.push(Instr::Branch {
        cond: BranchCond::Ne,
        rs1: Reg(5),
        rs2: Reg(0),
        target: loop_head as u32,
    });
    instrs.push(Instr::Halt);
    Program {
        instrs,
        num_regs: nregs as usize,
        init_regs: vec![0, 4, 9, 2, 7, 0],
        init_mem: (0..32).map(|x| x as u32 * 5 + 3).collect(),
    }
}

#[test]
fn random_loop_differential() {
    let mut rng = Rng(0xDEADBEEF);
    let lat = LatencyModel {
        branch: 2,
        ..LatencyModel::default()
    };
    for iter in 0..300u32 {
        let prog = random_loop_program(&mut rng);
        prog.validate().unwrap();
        let mut interp = Interp::new(&prog, 1 << 16);
        let (outcome, _) = interp.run_traced(100_000);
        assert!(
            outcome.halted(),
            "iter {iter}: generated loop program did not terminate in the golden interpreter"
        );
        let golden_regs = interp.regs.clone();
        let configs: Vec<(&str, ProcConfig)> = vec![
            (
                "us1-renaming-realmem",
                ProcConfig::ultrascalar_i(8)
                    .with_predictor(PredictorKind::Bimodal(16))
                    .with_memory_renaming()
                    .with_mem(ultrascalar_memsys::MemConfig::realistic(8, 1 << 16))
                    .with_latency(lat),
            ),
            (
                "hybrid-all-realmem",
                ProcConfig::hybrid(16, 4)
                    .with_predictor(PredictorKind::Bimodal(16))
                    .with_memory_renaming()
                    .with_shared_alus(2)
                    .with_trace_cache(1, 3)
                    .with_fetch_width(3)
                    .with_mem(ultrascalar_memsys::MemConfig::realistic(16, 1 << 16))
                    .with_latency(lat),
            ),
            (
                "us2-pipelined-loops",
                ProcConfig::ultrascalar_ii(8)
                    .with_predictor(PredictorKind::Taken)
                    .with_forwarding(ForwardModel::Pipelined { per_hop: 2 })
                    .with_memory_renaming()
                    .with_mem(ultrascalar_memsys::MemConfig::realistic(8, 1 << 16))
                    .with_latency(lat),
            ),
        ];
        for (name, cfg) in configs {
            let r = Ultrascalar::new(cfg.clone()).run(&prog);
            assert!(r.halted, "iter {iter} {name}: did not halt");
            assert_eq!(r.regs, golden_regs, "iter {iter} {name}: reg mismatch");
            assert_eq!(
                &r.mem[..32],
                &interp.mem[..32],
                "iter {iter} {name}: mem mismatch"
            );
        }
        let cfg = ProcConfig::ultrascalar_i(8)
            .with_predictor(PredictorKind::Bimodal(16))
            .with_shared_alus(2)
            .with_trace_cache(2, 4)
            .with_fetch_width(2)
            .with_mem(ultrascalar_memsys::MemConfig::realistic(8, 1 << 16))
            .with_latency(lat);
        let a = Ultrascalar::new(cfg.clone()).run(&prog);
        let b = BaselineOoO::new(cfg).run(&prog);
        assert_eq!(a.cycles, b.cycles, "iter {iter}: baseline cycle mismatch");
        assert_eq!(a.regs, b.regs, "iter {iter}: baseline reg mismatch");
    }
}

#[test]
fn random_differential() {
    let mut rng = Rng(0xC0FFEE);
    let lat = LatencyModel {
        branch: 2,
        ..LatencyModel::default()
    };
    for iter in 0..400u32 {
        let prog = random_program(&mut rng);
        if prog.validate().is_err() {
            continue;
        }
        let mut interp = Interp::new(&prog, 1 << 16);
        let (out, _) = interp.run_traced(100_000);
        let golden_regs = interp.regs.clone();
        let _ = out;
        let configs: Vec<(&str, ProcConfig)> = vec![
            (
                "us1-renaming",
                ProcConfig::ultrascalar_i(8)
                    .with_predictor(PredictorKind::Bimodal(16))
                    .with_memory_renaming()
                    .with_latency(lat),
            ),
            (
                "hybrid-all",
                ProcConfig::hybrid(16, 4)
                    .with_predictor(PredictorKind::Bimodal(16))
                    .with_memory_renaming()
                    .with_shared_alus(2)
                    .with_trace_cache(1, 3)
                    .with_fetch_width(3)
                    .with_latency(lat),
            ),
            (
                "us2-pipelined",
                ProcConfig::ultrascalar_ii(8)
                    .with_predictor(PredictorKind::NotTaken)
                    .with_forwarding(ForwardModel::Pipelined { per_hop: 2 })
                    .with_memory_renaming()
                    .with_latency(lat),
            ),
            (
                "us1-alus1",
                ProcConfig::ultrascalar_i(8)
                    .with_predictor(PredictorKind::Taken)
                    .with_shared_alus(1)
                    .with_trace_cache(2, 7)
                    .with_latency(lat),
            ),
        ];
        for (name, cfg) in configs {
            let r = Ultrascalar::new(cfg.clone()).run(&prog);
            assert!(r.halted, "iter {iter} {name}: did not halt");
            assert_eq!(r.regs, golden_regs, "iter {iter} {name}: reg mismatch");
            assert_eq!(
                &r.mem[..32],
                &interp.mem[..32],
                "iter {iter} {name}: mem mismatch"
            );
        }
        // baseline vs engine C=1 cycle equality with extras
        let cfg = ProcConfig::ultrascalar_i(8)
            .with_predictor(PredictorKind::Bimodal(16))
            .with_shared_alus(2)
            .with_trace_cache(2, 4)
            .with_fetch_width(2)
            .with_latency(lat);
        let a = Ultrascalar::new(cfg.clone()).run(&prog);
        let b = BaselineOoO::new(cfg).run(&prog);
        assert_eq!(a.cycles, b.cycles, "iter {iter}: baseline cycle mismatch");
        assert_eq!(a.regs, b.regs, "iter {iter}: baseline reg mismatch");
    }
}
