//! Tests for the paper's extension mechanisms: the shared-ALU
//! scheduler (§1/§7), memory renaming (§7), and the pipelined
//! (distance-dependent) forwarding study (§7).

use proptest::prelude::*;
use ultrascalar::processor::check_against_golden;
use ultrascalar::{BaselineOoO, ForwardModel, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_isa::workload::{self, RandomCfg};
use ultrascalar_isa::{assemble, Program};

const FUEL: usize = 5_000_000;

fn golden(cfg: ProcConfig, prog: &Program, label: &str) {
    let mut p = Ultrascalar::new(cfg);
    let r = p.run(prog);
    check_against_golden(&r, prog, FUEL).unwrap_or_else(|e| panic!("{label} on {}: {e}", p.name()));
}

// ---------- shared ALUs ----------

#[test]
fn shared_alus_preserve_architectural_state() {
    for (name, prog) in workload::standard_suite(31) {
        for k in [1usize, 2, 4, 16] {
            golden(
                ProcConfig::ultrascalar_i(8)
                    .with_shared_alus(k)
                    .with_predictor(PredictorKind::Bimodal(32)),
                &prog,
                name,
            );
        }
    }
}

#[test]
fn shared_alus_cycle_identical_to_baseline() {
    for (name, prog) in workload::standard_suite(37) {
        for k in [1usize, 2, 8] {
            let cfg = ProcConfig::ultrascalar_i(8)
                .with_shared_alus(k)
                .with_predictor(PredictorKind::Bimodal(32));
            let a = Ultrascalar::new(cfg.clone()).run(&prog);
            let b = BaselineOoO::new(cfg).run(&prog);
            assert_eq!(a.cycles, b.cycles, "{name} k={k}");
            assert_eq!(a.timings, b.timings, "{name} k={k}");
        }
    }
}

#[test]
fn more_alus_never_hurt() {
    let prog = workload::matvec(8, 8);
    let mut prev = u64::MAX;
    for k in [1usize, 2, 4, 8, 16] {
        let r = Ultrascalar::new(ProcConfig::ultrascalar_i(16).with_shared_alus(k)).run(&prog);
        assert!(r.halted);
        assert!(r.cycles <= prev, "k={k}: {} > {}", r.cycles, prev);
        prev = r.cycles;
    }
}

#[test]
fn one_alu_serialises_arithmetic() {
    // Eight independent adds, one ALU: issue must serialise at one per
    // cycle even though all are ready at once.
    let src = "
        add r1, r0, r0
        add r2, r0, r0
        add r3, r0, r0
        add r4, r0, r0
        add r5, r0, r0
        add r6, r0, r0
        add r7, r0, r0
        add r1, r0, r0
        halt
    ";
    let prog = assemble(src, 8).unwrap();
    let r1 = Ultrascalar::new(ProcConfig::ultrascalar_i(16).with_shared_alus(1)).run(&prog);
    let issues: Vec<u64> = r1.timings.iter().take(8).map(|x| x.issue).collect();
    assert_eq!(issues, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    assert!(r1.stats.alu_stalls > 0);
    // With eight ALUs they all go at once.
    let r8 = Ultrascalar::new(ProcConfig::ultrascalar_i(16).with_shared_alus(8)).run(&prog);
    assert!(r8.timings.iter().take(8).all(|x| x.issue == 0));
}

#[test]
fn multi_cycle_ops_occupy_the_alu() {
    // Two independent divides, one ALU: the second waits the full ten
    // cycles for the unit, not just one issue slot.
    let src = "
        div r1, r0, r0
        div r2, r0, r0
        halt
    ";
    let prog = assemble(src, 4).unwrap();
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(8).with_shared_alus(1)).run(&prog);
    assert_eq!(r.timings[0].issue, 0);
    assert_eq!(r.timings[1].issue, 10);
}

#[test]
fn oldest_first_alu_priority() {
    // Older ready instructions win the ALU: the young add cannot
    // starve the old one.
    let src = "
        div  r1, r0, r0     ; occupies the ALU 10 cycles
        add  r2, r1, r0     ; old, but waits on r1
        add  r3, r0, r0     ; young and ready
        halt
    ";
    let prog = assemble(src, 4).unwrap();
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(8).with_shared_alus(1)).run(&prog);
    // div at 0..9; the young independent add gets the unit at 10? No:
    // the unit frees at cycle 10, and the *older* dependent add is also
    // ready at 10 (div completes at 9) — oldest wins.
    assert_eq!(r.timings[1].issue, 10);
    assert_eq!(r.timings[2].issue, 11);
}

#[test]
fn paper_projection_window_128_with_16_shared_alus() {
    // The paper's closing configuration runs and stays correct; ALU
    // sharing costs little on real kernels.
    for (name, prog) in workload::standard_suite(41) {
        let full = Ultrascalar::new(ProcConfig::hybrid(128, 32)).run(&prog);
        let shared = Ultrascalar::new(ProcConfig::hybrid(128, 32).with_shared_alus(16)).run(&prog);
        assert!(shared.halted, "{name}");
        assert_eq!(shared.regs, full.regs, "{name}");
        assert!(
            shared.cycles <= full.cycles * 2,
            "{name}: sharing 16 ALUs must not double the cycle count \
             ({} vs {})",
            shared.cycles,
            full.cycles
        );
    }
}

// ---------- memory renaming ----------

#[test]
fn memory_renaming_preserves_architectural_state() {
    for (name, prog) in workload::standard_suite(43) {
        golden(
            ProcConfig::ultrascalar_i(8)
                .with_memory_renaming()
                .with_predictor(PredictorKind::Bimodal(32)),
            &prog,
            name,
        );
        golden(
            ProcConfig::ultrascalar_ii(8).with_memory_renaming(),
            &prog,
            name,
        );
    }
}

#[test]
fn store_to_load_forwarding_hits_and_saves_memory_traffic() {
    // Store then immediately reload the same address, repeatedly.
    let src = "
        li r1, 5
        li r2, 100
        sw r2, (r1)
        lw r3, (r1)
        addi r3, r3, 1
        sw r3, (r1)
        lw r4, (r1)
        addi r4, r4, 1
        sw r4, (r1)
        lw r5, (r1)
        halt
    ";
    let prog = assemble(src, 8).unwrap();
    let plain = Ultrascalar::new(ProcConfig::ultrascalar_i(16)).run(&prog);
    let renamed = Ultrascalar::new(ProcConfig::ultrascalar_i(16).with_memory_renaming()).run(&prog);
    assert_eq!(plain.regs, renamed.regs);
    assert_eq!(renamed.regs[5], 102);
    assert!(
        renamed.stats.store_forwards >= 3,
        "{}",
        renamed.stats.store_forwards
    );
    // Forwarded loads never touch the banks.
    assert!(renamed.stats.mem.loads < plain.stats.mem.loads);
    assert!(renamed.cycles <= plain.cycles);
}

#[test]
fn renaming_lets_independent_loads_bypass_stores() {
    // A store to one address followed by loads from different
    // addresses: with renaming the loads need not wait for the store to
    // reach memory.
    let src = "
        li r1, 0
        li r2, 50
        sw r2, 40(r1)
        lw r3, 1(r1)
        lw r4, 2(r1)
        lw r5, 3(r1)
        halt
    ";
    let prog = assemble(src, 8).unwrap();
    let mem = ultrascalar_memsys::MemConfig {
        n_leaves: 8,
        bandwidth: ultrascalar_memsys::Bandwidth::full(),
        banks: 8,
        bank_occupancy: 1,
        hop_latency: 2, // make store completion slow
        base_latency: 2,
        words: 128,
        network: ultrascalar_memsys::NetworkKind::FatTree,
        cluster_cache: None,
    };
    let plain = Ultrascalar::new(ProcConfig::ultrascalar_i(8).with_mem(mem.clone())).run(&prog);
    let renamed = Ultrascalar::new(
        ProcConfig::ultrascalar_i(8)
            .with_mem(mem)
            .with_memory_renaming(),
    )
    .run(&prog);
    assert_eq!(plain.regs, renamed.regs);
    assert!(
        renamed.cycles < plain.cycles,
        "bypassing must help: {} vs {}",
        renamed.cycles,
        plain.cycles
    );
}

#[test]
fn renaming_respects_aliasing() {
    // The load's address collides with the *middle* store, not the
    // last: the forwarded value must come from the nearest matching
    // store.
    let src = "
        li r1, 7
        li r2, 11
        li r3, 1
        sw r2, (r1)     ; mem[7] = 11
        sw r3, 3(r1)    ; mem[10] = 1
        lw r4, (r1)     ; must see 11
        halt
    ";
    let prog = assemble(src, 8).unwrap();
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(8).with_memory_renaming()).run(&prog);
    assert_eq!(r.regs[4], 11);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Memory renaming must never change architectural results, for
    /// arbitrary aliasing patterns.
    #[test]
    fn prop_renaming_equals_golden(seed in 0u64..10_000) {
        let prog = workload::random_program(&RandomCfg {
            seed,
            len: 150,
            mem_frac: 0.45,
            store_frac: 0.5,
            mem_span: 8, // dense aliasing
            ..RandomCfg::default()
        });
        let cfg = ProcConfig::ultrascalar_i(8)
            .with_memory_renaming()
            .with_predictor(PredictorKind::Bimodal(16));
        let mut p = Ultrascalar::new(cfg);
        let r = p.run(&prog);
        prop_assert!(check_against_golden(&r, &prog, FUEL).is_ok(), "seed {seed}");
    }

    /// Renaming can only help (or tie) cycle counts under ideal memory.
    #[test]
    fn prop_renaming_never_slower_under_ideal_memory(seed in 0u64..1_000) {
        let prog = workload::random_program(&RandomCfg {
            seed,
            len: 100,
            mem_frac: 0.4,
            mem_span: 16,
            branch_frac: 0.0,
            ..RandomCfg::default()
        });
        let base = Ultrascalar::new(ProcConfig::ultrascalar_i(8)).run(&prog);
        let ren = Ultrascalar::new(
            ProcConfig::ultrascalar_i(8).with_memory_renaming(),
        ).run(&prog);
        prop_assert_eq!(base.regs, ren.regs);
        prop_assert!(ren.cycles <= base.cycles, "{} vs {}", ren.cycles, base.cycles);
    }
}

// ---------- pipelined forwarding ----------

#[test]
fn pipelined_forwarding_preserves_architectural_state() {
    for (name, prog) in workload::standard_suite(47) {
        golden(
            ProcConfig::ultrascalar_i(16)
                .with_forwarding(ForwardModel::Pipelined { per_hop: 1 })
                .with_predictor(PredictorKind::Bimodal(32)),
            &prog,
            name,
        );
    }
}

#[test]
fn per_hop_zero_equals_single_cycle() {
    for (name, prog) in workload::standard_suite(53) {
        let a = Ultrascalar::new(ProcConfig::ultrascalar_i(8)).run(&prog);
        let b = Ultrascalar::new(
            ProcConfig::ultrascalar_i(8).with_forwarding(ForwardModel::Pipelined { per_hop: 0 }),
        )
        .run(&prog);
        assert_eq!(a.cycles, b.cycles, "{name}");
        assert_eq!(a.timings, b.timings, "{name}");
    }
}

#[test]
fn pipelining_costs_cycles_but_never_correctness() {
    let prog = workload::fibonacci(32);
    let flat = Ultrascalar::new(ProcConfig::ultrascalar_i(16)).run(&prog);
    let piped = Ultrascalar::new(
        ProcConfig::ultrascalar_i(16).with_forwarding(ForwardModel::Pipelined { per_hop: 1 }),
    )
    .run(&prog);
    assert_eq!(flat.regs, piped.regs);
    assert!(piped.cycles >= flat.cycles);
}

/// The paper's §7 claim, measured: programs whose instructions "depend
/// on their immediate predecessors rather than on far-previous
/// instructions" suffer less from distance-dependent latency.
#[test]
fn local_dependencies_degrade_less_under_pipelining() {
    // Both programs: a 6-step serial chain on r0 plus 42 independent
    // filler instructions — identical instruction mix and dependence
    // depth, different producer→consumer *distances*.
    let filler = "xor r7, r6, r6\n";
    // Local: the chain steps are adjacent in program order (distance 1).
    let mut local = String::from("li r0, 0\n");
    for _ in 0..6 {
        local.push_str("addi r0, r0, 1\n");
    }
    for _ in 0..42 {
        local.push_str(filler);
    }
    local.push_str("halt\n");
    // Far: seven fillers between consecutive chain steps, so each
    // dependence spans eight window slots (half the 16-wide window —
    // crossing high H-tree levels).
    let mut far = String::from("li r0, 0\n");
    for _ in 0..6 {
        far.push_str("addi r0, r0, 1\n");
        for _ in 0..7 {
            far.push_str(filler);
        }
    }
    far.push_str("halt\n");

    let slowdown = |src: &str| {
        let prog = assemble(src, 8).unwrap();
        let flat = Ultrascalar::new(ProcConfig::ultrascalar_i(16))
            .run(&prog)
            .cycles;
        let piped = Ultrascalar::new(
            ProcConfig::ultrascalar_i(16).with_forwarding(ForwardModel::Pipelined { per_hop: 2 }),
        )
        .run(&prog)
        .cycles;
        piped as f64 / flat as f64
    };
    let local_sd = slowdown(&local);
    let far_sd = slowdown(&far);
    assert!(
        local_sd <= far_sd,
        "local chain slowdown {local_sd:.2} must not exceed far-chain {far_sd:.2}"
    );
}

/// Extensions compose: all three at once, still architecturally exact.
#[test]
fn all_extensions_together_match_golden() {
    for (name, prog) in workload::standard_suite(59) {
        golden(
            ProcConfig::hybrid(16, 4)
                .with_shared_alus(4)
                .with_memory_renaming()
                .with_forwarding(ForwardModel::Pipelined { per_hop: 1 })
                .with_predictor(PredictorKind::Bimodal(64)),
            &prog,
            name,
        );
    }
}

// ---------- distributed cluster caches (memsys feature, §7) ----------

#[test]
fn cluster_caches_preserve_architectural_state() {
    use ultrascalar_memsys::{Bandwidth, CacheConfig, MemConfig, NetworkKind};
    let mem = MemConfig {
        n_leaves: 8,
        bandwidth: Bandwidth::constant(1.0),
        banks: 4,
        bank_occupancy: 1,
        hop_latency: 1,
        base_latency: 0,
        words: 1 << 12,
        network: NetworkKind::FatTree,
        cluster_cache: Some(CacheConfig::small(2)),
    };
    for (name, prog) in workload::standard_suite(67) {
        golden(
            ProcConfig::hybrid(8, 4)
                .with_mem(mem.clone())
                .with_predictor(PredictorKind::Bimodal(32)),
            &prog,
            name,
        );
    }
}

#[test]
fn cluster_caches_help_reuse_heavy_kernels() {
    use ultrascalar_memsys::{Bandwidth, CacheConfig, MemConfig, NetworkKind};
    let base = MemConfig {
        n_leaves: 16,
        bandwidth: Bandwidth::constant(1.0),
        banks: 4,
        bank_occupancy: 1,
        hop_latency: 1,
        base_latency: 0,
        words: 1 << 12,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    };
    let cached = base.clone().with_cluster_cache(CacheConfig::small(4));
    let prog = workload::bubble_sort(24, 3);
    let pred = PredictorKind::Bimodal(64);
    let plain = Ultrascalar::new(
        ProcConfig::hybrid(16, 4)
            .with_mem(base)
            .with_predictor(pred),
    )
    .run(&prog);
    let with_cache = Ultrascalar::new(
        ProcConfig::hybrid(16, 4)
            .with_mem(cached)
            .with_predictor(pred),
    )
    .run(&prog);
    assert_eq!(plain.mem, with_cache.mem);
    assert!(with_cache.stats.mem.cache_hits > 0);
    assert!(
        with_cache.cycles <= plain.cycles,
        "{} vs {}",
        with_cache.cycles,
        plain.cycles
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cluster caches must be architecturally invisible under arbitrary
    /// aliasing, store mixes and mispredictions.
    #[test]
    fn prop_cluster_caches_equal_golden(seed in 0u64..10_000) {
        use ultrascalar_memsys::{CacheConfig, MemConfig};
        let prog = workload::random_program(&RandomCfg {
            seed,
            len: 150,
            mem_frac: 0.4,
            store_frac: 0.5,
            mem_span: 16,
            branch_frac: 0.1,
            ..RandomCfg::default()
        });
        let mem = MemConfig::realistic(8, 1 << 12)
            .with_cluster_cache(CacheConfig::small(4));
        let cfg = ProcConfig::ultrascalar_i(8)
            .with_mem(mem)
            .with_predictor(PredictorKind::Bimodal(16));
        let mut p = Ultrascalar::new(cfg);
        let r = p.run(&prog);
        prop_assert!(check_against_golden(&r, &prog, FUEL).is_ok(), "seed {seed}");
    }
}

// ---------- fetch-width ablation ----------

#[test]
fn fetch_width_preserves_architectural_state() {
    for (name, prog) in workload::standard_suite(71) {
        for f in [1usize, 2, 4] {
            golden(
                ProcConfig::ultrascalar_i(8)
                    .with_fetch_width(f)
                    .with_predictor(PredictorKind::Bimodal(32)),
                &prog,
                name,
            );
        }
    }
}

#[test]
fn fetch_width_cycle_identical_to_baseline() {
    for (name, prog) in workload::standard_suite(73) {
        let cfg = ProcConfig::ultrascalar_i(8)
            .with_fetch_width(2)
            .with_predictor(PredictorKind::Bimodal(32));
        let a = Ultrascalar::new(cfg.clone()).run(&prog);
        let b = BaselineOoO::new(cfg).run(&prog);
        assert_eq!(a.cycles, b.cycles, "{name}");
        assert_eq!(a.timings, b.timings, "{name}");
    }
}

#[test]
fn narrower_fetch_never_helps() {
    let prog = workload::vec_scale(48, 3);
    let mut prev = 0u64;
    for f in [1usize, 2, 4, 8, 16] {
        let r = Ultrascalar::new(ProcConfig::ultrascalar_i(16).with_fetch_width(f)).run(&prog);
        assert!(r.halted);
        if prev != 0 {
            assert!(r.cycles <= prev, "fetch {f}: {} > {}", r.cycles, prev);
        }
        prev = r.cycles;
    }
    // Unlimited fetch equals fetch width = window.
    let unlimited = Ultrascalar::new(ProcConfig::ultrascalar_i(16)).run(&prog);
    let full = Ultrascalar::new(ProcConfig::ultrascalar_i(16).with_fetch_width(16)).run(&prog);
    assert_eq!(unlimited.cycles, full.cycles);
}

#[test]
fn fetch_width_one_caps_ipc_at_one() {
    let prog = workload::vec_scale(32, 2);
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(8).with_fetch_width(1)).run(&prog);
    assert!(r.ipc() <= 1.0 + 1e-9, "IPC {} with fetch width 1", r.ipc());
}

// ---------- trace-cache fetch model ----------

#[test]
fn trace_cache_preserves_architectural_state() {
    for (name, prog) in workload::standard_suite(79) {
        golden(
            ProcConfig::ultrascalar_i(8)
                .with_trace_cache(4, 5)
                .with_predictor(PredictorKind::NotTaken),
            &prog,
            name,
        );
    }
}

#[test]
fn trace_cache_cycle_identical_to_baseline() {
    for (name, prog) in workload::standard_suite(83) {
        let cfg = ProcConfig::ultrascalar_i(8)
            .with_trace_cache(4, 5)
            .with_predictor(PredictorKind::Bimodal(8));
        let a = Ultrascalar::new(cfg.clone()).run(&prog);
        let b = BaselineOoO::new(cfg).run(&prog);
        assert_eq!(a.cycles, b.cycles, "{name}");
        assert_eq!(a.timings, b.timings, "{name}");
    }
}

#[test]
fn trace_cache_misses_cost_cycles() {
    // A loop whose back edge mispredicts under NotTaken: the first
    // redirect misses, later ones hit; with a huge penalty the run
    // must slow down vs the ideal trace cache.
    let prog = workload::sum_reduction(32);
    let ideal =
        Ultrascalar::new(ProcConfig::ultrascalar_i(8).with_predictor(PredictorKind::NotTaken))
            .run(&prog);
    let cold = Ultrascalar::new(
        ProcConfig::ultrascalar_i(8)
            .with_predictor(PredictorKind::NotTaken)
            .with_trace_cache(1, 20),
    )
    .run(&prog);
    assert_eq!(ideal.regs, cold.regs);
    assert!(
        cold.cycles > ideal.cycles,
        "{} vs {}",
        cold.cycles,
        ideal.cycles
    );
    // A warm, large trace cache costs little: the loop head stays
    // resident after the first miss.
    let warm = Ultrascalar::new(
        ProcConfig::ultrascalar_i(8)
            .with_predictor(PredictorKind::NotTaken)
            .with_trace_cache(64, 20),
    )
    .run(&prog);
    assert!(warm.cycles <= cold.cycles);
    assert!(warm.cycles < ideal.cycles + 25, "one compulsory miss only");
}

#[test]
fn perfect_prediction_never_touches_the_trace_cache() {
    let prog = workload::sum_reduction(32);
    let a = Ultrascalar::new(ProcConfig::ultrascalar_i(8)).run(&prog);
    let b = Ultrascalar::new(ProcConfig::ultrascalar_i(8).with_trace_cache(1, 100)).run(&prog);
    assert_eq!(a.cycles, b.cycles);
}
