//! Differential test for packed *value* forwarding: every
//! configuration must produce bit-identical results (cycles,
//! registers, memory, statistics, per-instruction timings) with
//! `packed_values` on and off, and against the fully scalar resolve
//! path, across random straight-line and loop programs. The
//! value snapshot is a pure representation change — the scalar
//! last-writer map becomes struct-of-arrays value/seq/readiness lanes
//! gated by a per-cycle has-writer lane word — so any observable
//! divergence is a bug.
//!
//! Register-file widths cover every lane-word regime of the snapshot:
//! 6 (one word), 65 (first lane of the second word), 128 (exact
//! two-word boundary) and 256 (the ISA's maximum, all four words
//! live). The configuration corners are the same feature interactions
//! `packed_equivalence` sweeps (renaming store re-resolution, shared
//! ALUs, finite memory, trace cache, fetch caps, hop-banded pipelined
//! forwarding, no-cycle-skip).

use ultrascalar::{ForwardModel, LatencyModel, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_isa::{AluOp, BranchCond, Instr, Program, Reg};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_program(rng: &mut Rng, nregs: usize) -> Program {
    let len = 12 + rng.below(20) as usize;
    let mut instrs = Vec::new();
    for i in 0..len {
        let r = |rng: &mut Rng| Reg(rng.below(nregs as u64) as u8);
        match rng.below(10) {
            0..=2 => instrs.push(Instr::AluImm {
                op: [AluOp::Add, AluOp::Sub, AluOp::Xor][rng.below(3) as usize],
                rd: r(rng),
                rs1: r(rng),
                imm: rng.below(32) as i32,
            }),
            3..=4 => instrs.push(Instr::Alu {
                op: [AluOp::Add, AluOp::Mul, AluOp::And, AluOp::Div][rng.below(4) as usize],
                rd: r(rng),
                rs1: r(rng),
                rs2: r(rng),
            }),
            5 => instrs.push(Instr::Load {
                rd: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            6 => instrs.push(Instr::Store {
                src: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            7 => instrs.push(Instr::LoadImm {
                rd: r(rng),
                imm: rng.below(64) as i32,
            }),
            8 => {
                // Forward branch only (termination guaranteed).
                let tgt = (i as u64 + 1 + rng.below(4)).min(len as u64) as u32;
                instrs.push(Instr::Branch {
                    cond: [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt][rng.below(3) as usize],
                    rs1: r(rng),
                    rs2: r(rng),
                    target: tgt,
                });
            }
            _ => instrs.push(Instr::Nop),
        }
    }
    instrs.push(Instr::Halt);
    Program {
        instrs,
        num_regs: nregs,
        init_regs: (0..nregs as u32).map(|x| x * 3 + 1).collect(),
        init_mem: (0..32).map(|x| x as u32 * 7 + 2).collect(),
    }
}

/// The same configuration corners `packed_equivalence` uses.
fn configs(lat: LatencyModel) -> Vec<(&'static str, ProcConfig)> {
    vec![
        (
            "us1-plain",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_latency(lat),
        ),
        (
            // Realistic memory and pipelined forwarding are shape-gated
            // off the packed path by default; the override keeps these
            // corners under differential test.
            "us1-renaming-realmem",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_memory_renaming()
                .with_mem(ultrascalar_memsys::MemConfig::realistic(8, 1 << 16))
                .with_packed_override()
                .with_latency(lat),
        ),
        (
            "hybrid-all",
            ProcConfig::hybrid(16, 4)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_memory_renaming()
                .with_shared_alus(2)
                .with_trace_cache(1, 3)
                .with_fetch_width(3)
                .with_latency(lat),
        ),
        (
            "us2-pipelined",
            ProcConfig::ultrascalar_ii(8)
                .with_predictor(PredictorKind::NotTaken)
                .with_forwarding(ForwardModel::Pipelined { per_hop: 2 })
                .with_memory_renaming()
                .with_packed_override()
                .with_latency(lat),
        ),
        (
            "us1-noskip",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Taken)
                .with_shared_alus(1)
                .without_cycle_skipping()
                .with_latency(lat),
        ),
    ]
}

fn assert_same(
    a: &ultrascalar::RunResult,
    b: &ultrascalar::RunResult,
    iter: u32,
    name: &str,
    nregs: usize,
    what: &str,
) {
    // Every config corner now rides the packed path (the hop-banded
    // readiness words cover pipelined forwarding too), so the fallback
    // counter is 0 on both sides and stats compare whole.
    let sa = a.stats.clone();
    let sb = b.stats.clone();
    assert_eq!(
        a.cycles, b.cycles,
        "iter {iter} {name} L={nregs} {what}: cycle mismatch"
    );
    assert_eq!(
        a.halted, b.halted,
        "iter {iter} {name} L={nregs} {what}: halted"
    );
    assert_eq!(a.regs, b.regs, "iter {iter} {name} L={nregs} {what}: regs");
    assert_eq!(a.mem, b.mem, "iter {iter} {name} L={nregs} {what}: memory");
    assert_eq!(sa, sb, "iter {iter} {name} L={nregs} {what}: stats");
    assert_eq!(
        a.timings, b.timings,
        "iter {iter} {name} L={nregs} {what}: timings"
    );
}

fn differential_sweep(seed: u64, nregs: usize, iters: u32) {
    let mut rng = Rng(seed);
    let lat = LatencyModel {
        branch: 2,
        ..LatencyModel::default()
    };
    for iter in 0..iters {
        let prog = random_program(&mut rng, nregs);
        if prog.validate().is_err() {
            continue;
        }
        for (name, cfg) in configs(lat) {
            assert!(cfg.packed_values, "packed values must default on");
            let full = Ultrascalar::new(cfg.clone()).run(&prog);
            let flags_only = Ultrascalar::new(cfg.clone().without_packed_values()).run(&prog);
            let scalar = Ultrascalar::new(cfg.without_packed_flags()).run(&prog);
            // The banded readiness words keep every corner — pipelined
            // forwarding included — on the packed path: no run at any
            // ISA-expressible width may count a fallback.
            assert_eq!(
                full.stats.packed_fallbacks, 0,
                "iter {iter} {name} L={nregs}: full-run fallback counter"
            );
            assert_eq!(
                flags_only.stats.packed_fallbacks, 0,
                "iter {iter} {name} L={nregs}: flags-only fallback counter"
            );
            assert_eq!(
                scalar.stats.packed_fallbacks, 0,
                "iter {iter} {name} L={nregs}: scalar run must not count fallbacks"
            );
            assert_same(&full, &flags_only, iter, name, nregs, "vs flags-only");
            assert_same(&full, &scalar, iter, name, nregs, "vs scalar");
        }
    }
}

#[test]
fn packed_values_match_scalar_resolve() {
    differential_sweep(0x5EED_CAFE, 6, 150);
}

#[test]
fn packed_values_match_scalar_resolve_65_regs() {
    differential_sweep(0x65AB_CDEF, 65, 60);
}

#[test]
fn packed_values_match_scalar_resolve_128_regs() {
    differential_sweep(0x1288_BEEF, 128, 60);
}

#[test]
fn packed_values_match_scalar_resolve_256_regs() {
    differential_sweep(0x2560_FACE, 256, 60);
}

/// Forwarding-heavy chain: one shared register rewritten every
/// iteration with a fan of dependent readers — the kernel shape where
/// gate-passing stations resolve forwarded operands every cycle, i.e.
/// where the snapshot path actually runs hot.
#[test]
fn forward_fan_pinned_across_resolve_paths() {
    let hub = Reg(1);
    let mut instrs = vec![Instr::LoadImm { rd: hub, imm: 3 }];
    for round in 0..12 {
        instrs.push(Instr::AluImm {
            op: AluOp::Add,
            rd: hub,
            rs1: hub,
            imm: round + 1,
        });
        for k in 0..6u8 {
            instrs.push(Instr::Alu {
                op: AluOp::Add,
                rd: Reg(2 + k),
                rs1: Reg(2 + k),
                rs2: hub,
            });
        }
    }
    instrs.push(Instr::Halt);
    let prog = Program::new(instrs, 8);
    prog.validate().expect("fan validates");

    for window in [4usize, 16, 64] {
        let full = Ultrascalar::new(ProcConfig::ultrascalar_i(window)).run(&prog);
        let flags_only =
            Ultrascalar::new(ProcConfig::ultrascalar_i(window).without_packed_values()).run(&prog);
        let scalar =
            Ultrascalar::new(ProcConfig::ultrascalar_i(window).without_packed_flags()).run(&prog);
        assert_eq!(full.stats.packed_fallbacks, 0, "n={window}");
        assert_eq!(full.regs, flags_only.regs, "n={window}");
        assert_eq!(full.cycles, flags_only.cycles, "n={window}");
        assert_eq!(full.timings, flags_only.timings, "n={window}");
        assert_eq!(full.regs, scalar.regs, "n={window}");
        assert_eq!(full.cycles, scalar.cycles, "n={window}");
        assert_eq!(full.timings, scalar.timings, "n={window}");
        // The fan forwards on every hub read: the forwarding-distance
        // histogram must agree too (part of `stats` in the random
        // sweep; spelled out here for the hot counter).
        assert_eq!(
            full.stats.forward_dist, scalar.stats.forward_dist,
            "n={window}: forwarding histogram"
        );
    }
}
