//! Regression pin for engine reuse: an [`Ultrascalar`] that is rewound
//! in place between runs ([`Processor::run_reusing`]) must be
//! cycle-exact against a freshly constructed engine — same cycles,
//! same registers, same memory image, same statistics, same per-
//! instruction timings. Warmth is an allocation optimisation, never an
//! observable one.

use ultrascalar::{
    EnginePool, ForwardModel, PredictorKind, ProcConfig, Processor, RunResult, Ultrascalar,
};
use ultrascalar_isa::workload;
use ultrascalar_memsys::{Bandwidth, CacheConfig, MemConfig, NetworkKind};

/// The configuration corners the serving mode is expected to cycle
/// through: every reset path in the engine (fetch rewind, predictor
/// rewind, trace-cache flush, memory-system rewind, cluster recycling,
/// shared-ALU pool, packed and scalar scan) is on at least one of
/// them.
fn configs() -> Vec<(&'static str, ProcConfig)> {
    let realistic_mem = MemConfig {
        n_leaves: 16,
        bandwidth: Bandwidth::sqrt(),
        banks: 8,
        bank_occupancy: 1,
        hop_latency: 1,
        base_latency: 0,
        words: 1 << 12,
        network: NetworkKind::FatTree,
        cluster_cache: None,
    };
    vec![
        (
            "usi-bimodal",
            ProcConfig::ultrascalar_i(8).with_predictor(PredictorKind::Bimodal(64)),
        ),
        ("usii-perfect", ProcConfig::ultrascalar_ii(8)),
        (
            "hybrid-renaming-btfn",
            ProcConfig::hybrid(16, 4)
                .with_predictor(PredictorKind::Btfn)
                .with_memory_renaming()
                .with_mem(realistic_mem.clone()),
        ),
        (
            "usi-shared-alus-trace-cache",
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Bimodal(16))
                .with_shared_alus(2)
                .with_trace_cache(4, 3),
        ),
        (
            "hybrid-cluster-cache-butterfly",
            ProcConfig::hybrid(16, 4)
                .with_predictor(PredictorKind::Bimodal(64))
                .with_mem(
                    realistic_mem
                        .with_network(NetworkKind::Butterfly)
                        .with_cluster_cache(CacheConfig::small(4)),
                ),
        ),
        (
            "usi-pipelined-scalar-scan",
            ProcConfig::ultrascalar_i(8).with_forwarding(ForwardModel::Pipelined { per_hop: 1 }),
        ),
    ]
}

fn assert_same(ctx: &str, warm: &RunResult, fresh: &RunResult) {
    assert_eq!(warm.halted, fresh.halted, "{ctx}: halted");
    assert_eq!(warm.cycles, fresh.cycles, "{ctx}: cycles");
    assert_eq!(warm.regs, fresh.regs, "{ctx}: registers");
    assert_eq!(warm.mem, fresh.mem, "{ctx}: memory image");
    assert_eq!(warm.stats, fresh.stats, "{ctx}: statistics");
    assert_eq!(warm.timings, fresh.timings, "{ctx}: timings");
}

/// One warm engine per config, driven through the whole kernel suite
/// twice (the second pass hits the same-program fetch rewind), checked
/// point by point against throwaway fresh engines.
#[test]
fn reused_engine_is_cycle_exact_across_the_suite() {
    let suite = workload::standard_suite(5);
    for (cname, cfg) in configs() {
        let mut warm = Ultrascalar::new(cfg.clone());
        let mut out = RunResult::default();
        for pass in 0..2 {
            for (kname, prog) in &suite {
                warm.run_reusing(prog, &mut out);
                let fresh = Ultrascalar::new(cfg.clone()).run(prog);
                assert_same(&format!("{cname}/{kname}/pass{pass}"), &out, &fresh);
            }
        }
    }
}

/// Alternating between two programs exercises the change-program reset
/// path (fetch rebuild, memory reload, stale-window recycling) rather
/// than the same-program rewind.
#[test]
fn alternating_programs_reset_cleanly() {
    let suite = workload::standard_suite(4);
    let (aname, a) = &suite[0];
    let (bname, b) = &suite[suite.len() - 1];
    let cfg = ProcConfig::hybrid(16, 4).with_predictor(PredictorKind::Bimodal(64));
    let mut warm = Ultrascalar::new(cfg.clone());
    let mut out = RunResult::default();
    for round in 0..3 {
        for (name, prog) in [(aname, a), (bname, b)] {
            warm.run_reusing(prog, &mut out);
            let fresh = Ultrascalar::new(cfg.clone()).run(prog);
            assert_same(&format!("alt/{name}/round{round}"), &out, &fresh);
        }
    }
}

/// A cold reset releases retained state without changing behaviour.
#[test]
fn explicit_reset_keeps_results_exact() {
    let suite = workload::standard_suite(3);
    let cfg = ProcConfig::ultrascalar_i(8).with_predictor(PredictorKind::Bimodal(64));
    let mut engine = Ultrascalar::new(cfg.clone());
    let mut out = RunResult::default();
    let (name, prog) = &suite[0];
    engine.run_reusing(prog, &mut out);
    let first = out.clone();
    engine.reset();
    engine.run_reusing(prog, &mut out);
    assert_same(&format!("post-reset/{name}"), &out, &first);
}

/// The pool's warm path composes the same guarantees: acquire-and-run
/// matches a fresh engine for every kernel even as configs alternate
/// and evict.
#[test]
fn pooled_engines_stay_exact_under_eviction() {
    let suite = workload::standard_suite(6);
    let all = configs();
    // Capacity below the config count forces evictions and rebuilds.
    let mut pool = EnginePool::new(2);
    for (cname, cfg) in all.iter().chain(all.iter()) {
        for (kname, prog) in suite.iter().take(3) {
            let warm = pool.acquire(cfg).run(prog).clone();
            let fresh = Ultrascalar::new(cfg.clone()).run(prog);
            assert_same(&format!("pool/{cname}/{kname}"), &warm, &fresh);
        }
    }
    assert!(pool.misses() > all.len() as u64, "evictions occurred");
}
