//! Differential suite dedicated to pipelined forwarding on the packed
//! path: the hop-banded readiness words must keep every
//! `ForwardModel::Pipelined { per_hop }` configuration on the packed
//! fast path (`packed_fallbacks == 0`) while staying byte-identical —
//! cycles, registers, memory, statistics, per-instruction timings —
//! to the retained scalar resolve, across window sizes (band counts
//! from 1 to 7), per-hop latencies from 0 to the saturating `u64`
//! extremes, and register-file widths spanning every lane-word regime.
//!
//! The extreme `per_hop` rows pin the saturating-arithmetic regime: a
//! huge hop latency must behave as "never forwards across distance"
//! (readiness horizon clamps to `u64::MAX`), not wrap into the past.

use ultrascalar::{ForwardModel, LatencyModel, PredictorKind, ProcConfig, Processor, Ultrascalar};
use ultrascalar_isa::{workload, AluOp, BranchCond, Instr, Program, Reg};

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_program(rng: &mut Rng, nregs: usize) -> Program {
    let len = 12 + rng.below(20) as usize;
    let mut instrs = Vec::new();
    for i in 0..len {
        let r = |rng: &mut Rng| Reg(rng.below(nregs as u64) as u8);
        match rng.below(10) {
            0..=2 => instrs.push(Instr::AluImm {
                op: [AluOp::Add, AluOp::Sub, AluOp::Xor][rng.below(3) as usize],
                rd: r(rng),
                rs1: r(rng),
                imm: rng.below(32) as i32,
            }),
            3..=4 => instrs.push(Instr::Alu {
                op: [AluOp::Add, AluOp::Mul, AluOp::And, AluOp::Div][rng.below(4) as usize],
                rd: r(rng),
                rs1: r(rng),
                rs2: r(rng),
            }),
            5 => instrs.push(Instr::Load {
                rd: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            6 => instrs.push(Instr::Store {
                src: r(rng),
                base: r(rng),
                offset: rng.below(16) as i32,
            }),
            7 => instrs.push(Instr::LoadImm {
                rd: r(rng),
                imm: rng.below(64) as i32,
            }),
            8 => {
                // Forward branch only (termination guaranteed).
                let tgt = (i as u64 + 1 + rng.below(4)).min(len as u64) as u32;
                instrs.push(Instr::Branch {
                    cond: [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt][rng.below(3) as usize],
                    rs1: r(rng),
                    rs2: r(rng),
                    target: tgt,
                });
            }
            _ => instrs.push(Instr::Nop),
        }
    }
    instrs.push(Instr::Halt);
    Program {
        instrs,
        num_regs: nregs,
        init_regs: (0..nregs as u32).map(|x| x * 3 + 1).collect(),
        init_mem: (0..32).map(|x| x as u32 * 7 + 2).collect(),
    }
}

/// Assert bit-identical results and a clean fallback counter on the
/// packed side.
fn assert_pinned(
    packed: &ultrascalar::RunResult,
    scalar: &ultrascalar::RunResult,
    ctx: &std::fmt::Arguments<'_>,
) {
    assert_eq!(
        packed.stats.packed_fallbacks, 0,
        "{ctx}: pipelined config must stay on the banded packed path"
    );
    assert_eq!(scalar.stats.packed_fallbacks, 0, "{ctx}: scalar counter");
    assert_eq!(packed.cycles, scalar.cycles, "{ctx}: cycles");
    assert_eq!(packed.halted, scalar.halted, "{ctx}: halted");
    assert_eq!(packed.regs, scalar.regs, "{ctx}: regs");
    assert_eq!(packed.mem, scalar.mem, "{ctx}: memory");
    assert_eq!(packed.stats, scalar.stats, "{ctx}: stats");
    assert_eq!(packed.timings, scalar.timings, "{ctx}: timings");
}

/// Random programs across window sizes (1 to 7 hop bands) × per-hop
/// latencies, packed vs scalar, three resolve flavours each.
#[test]
fn banded_pipelined_matches_scalar_across_windows_and_hops() {
    let mut rng = Rng(0x000B_1B3D_BA6D);
    let lat = LatencyModel {
        branch: 2,
        ..LatencyModel::default()
    };
    for window in [1usize, 2, 8, 16, 64] {
        for per_hop in [0u64, 1, 2, 7] {
            for iter in 0..20u32 {
                let prog = random_program(&mut rng, 8);
                if prog.validate().is_err() {
                    continue;
                }
                // Pipelined forwarding is shape-gated off by default;
                // the override keeps this suite on the banded path.
                let cfg = ProcConfig::ultrascalar_i(window)
                    .with_predictor(PredictorKind::Bimodal(16))
                    .with_forwarding(ForwardModel::Pipelined { per_hop })
                    .with_packed_override()
                    .with_latency(lat);
                let packed = Ultrascalar::new(cfg.clone()).run(&prog);
                let flags_only = Ultrascalar::new(cfg.clone().without_packed_values()).run(&prog);
                let scalar = Ultrascalar::new(cfg.without_packed_flags()).run(&prog);
                assert_pinned(
                    &packed,
                    &scalar,
                    &format_args!("n={window} per_hop={per_hop} iter={iter} full"),
                );
                assert_pinned(
                    &flags_only,
                    &scalar,
                    &format_args!("n={window} per_hop={per_hop} iter={iter} flags-only"),
                );
            }
        }
    }
}

/// The saturation regime: `per_hop` so large that any non-zero hop
/// distance clamps the readiness horizon to `u64::MAX` ("this value
/// never arrives from afar"). The packed banded path must agree with
/// the scalar resolve exactly — in particular it must not wrap the
/// horizon into the past and forward stale values early.
#[test]
fn saturating_per_hop_extremes_stay_exact() {
    let mut rng = Rng(0x5A7_FFFF);
    for per_hop in [u64::MAX, u64::MAX / 2, u64::MAX / 3, 1u64 << 62] {
        for iter in 0..15u32 {
            let prog = random_program(&mut rng, 8);
            if prog.validate().is_err() {
                continue;
            }
            // Window 2 keeps same-position reuse (hop 0, zero extra)
            // common, so progress is possible even when cross-station
            // forwarding saturates; the cycle budget bounds the rest.
            for window in [2usize, 8] {
                let cfg = ProcConfig {
                    max_cycles: 20_000,
                    ..ProcConfig::ultrascalar_i(window)
                }
                .with_forwarding(ForwardModel::Pipelined { per_hop })
                .with_packed_override();
                let packed = Ultrascalar::new(cfg.clone()).run(&prog);
                let scalar = Ultrascalar::new(cfg.without_packed_flags()).run(&prog);
                assert_pinned(
                    &packed,
                    &scalar,
                    &format_args!("n={window} per_hop={per_hop} iter={iter}"),
                );
            }
        }
    }
}

/// Register-file widths across every lane-word regime under pipelined
/// forwarding: the banded words must cover all four readiness words,
/// not just word 0.
#[test]
fn banded_path_covers_all_lane_words() {
    let mut rng = Rng(0xBADBA4D5);
    for nregs in [6usize, 65, 128, 256] {
        for iter in 0..15u32 {
            let prog = random_program(&mut rng, nregs);
            if prog.validate().is_err() {
                continue;
            }
            let cfg = ProcConfig::ultrascalar_ii(8)
                .with_memory_renaming()
                .with_forwarding(ForwardModel::Pipelined { per_hop: 3 })
                .with_packed_override();
            let packed = Ultrascalar::new(cfg.clone()).run(&prog);
            let scalar = Ultrascalar::new(cfg.without_packed_flags()).run(&prog);
            assert_pinned(&packed, &scalar, &format_args!("L={nregs} iter={iter}"));
        }
    }
}

/// The standard named kernels under pipelined forwarding — deeper
/// programs than the random sweep, exercising long-lived stations and
/// cycle skipping over multi-band readiness horizons.
#[test]
fn kernel_suite_pinned_under_pipelined_forwarding() {
    for (name, prog) in workload::standard_suite(6) {
        for per_hop in [1u64, 4] {
            let cfg = ProcConfig::hybrid(16, 4)
                .with_memory_renaming()
                .with_forwarding(ForwardModel::Pipelined { per_hop })
                .with_packed_override();
            let packed = Ultrascalar::new(cfg.clone()).run(&prog);
            let scalar = Ultrascalar::new(cfg.without_packed_flags()).run(&prog);
            assert_pinned(&packed, &scalar, &format_args!("{name} per_hop={per_hop}"));
        }
    }
}
