//! Property test: the event-driven (cycle-skipping) engines are
//! observationally identical to the retained naive tick-every-cycle
//! reference loop — same cycle count, same per-instruction issue and
//! completion times, same architectural state, same statistics — on
//! random programs including misprediction storms and bank-conflict
//! saturation.
//!
//! The skip is only taken on cycles proven silent, so equality must be
//! *exact*, not approximate; every field of `RunResult` is compared.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use ultrascalar::{
    BaselineOoO, ForwardModel, LatencyModel, PredictorKind, ProcConfig, Processor, Ultrascalar,
};
use ultrascalar_isa::{AluOp, BranchCond, Instr, Program, Reg};
use ultrascalar_memsys::MemConfig;

/// Division-heavy straight-line code with forward branches: long
/// functional-unit latencies create the quiet multi-cycle gaps the
/// event-driven loop is designed to jump over.
fn div_heavy_program(rng: &mut StdRng) -> Program {
    let len = 16 + rng.gen_range(0usize..24);
    let mut instrs = Vec::new();
    for i in 0..len {
        let r = |rng: &mut StdRng| Reg(rng.gen_range(0u8..6));
        match rng.gen_range(0u32..10) {
            // Weighted towards Div/Mul so dependence chains stall for
            // many cycles at a time.
            0..=4 => instrs.push(Instr::Alu {
                op: [AluOp::Div, AluOp::Div, AluOp::Mul, AluOp::Add][rng.gen_range(0usize..4)],
                rd: r(rng),
                rs1: r(rng),
                rs2: r(rng),
            }),
            5..=6 => instrs.push(Instr::AluImm {
                op: [AluOp::Add, AluOp::Xor][rng.gen_range(0usize..2)],
                rd: r(rng),
                rs1: r(rng),
                imm: rng.gen_range(0i32..32),
            }),
            7 => instrs.push(Instr::Load {
                rd: r(rng),
                base: r(rng),
                offset: rng.gen_range(0i32..16),
            }),
            8 => {
                let tgt = (i as u32 + 1 + rng.gen_range(0u32..4)).min(len as u32);
                instrs.push(Instr::Branch {
                    cond: [BranchCond::Eq, BranchCond::Ne][rng.gen_range(0usize..2)],
                    rs1: r(rng),
                    rs2: r(rng),
                    target: tgt,
                });
            }
            _ => instrs.push(Instr::Store {
                src: r(rng),
                base: r(rng),
                offset: rng.gen_range(0i32..16),
            }),
        }
    }
    instrs.push(Instr::Halt);
    Program {
        instrs,
        num_regs: 6,
        init_regs: vec![0, 7, 19, 3, 11, 5],
        init_mem: (0..32).map(|x| x as u32 * 7 + 2).collect(),
    }
}

/// A loop whose inner branch flips direction with the counter's parity:
/// a bimodal predictor mispredicts roughly every iteration, so the run
/// is a storm of flushes, redirects and (with a finite trace cache)
/// fetch stalls.
fn misprediction_storm_program(rng: &mut StdRng) -> Program {
    let iterations = 8 + rng.gen_range(0i32..10) * 2;
    let mut instrs = vec![Instr::LoadImm {
        rd: Reg(5),
        imm: iterations,
    }];
    let head = instrs.len();
    for _ in 0..rng.gen_range(1usize..4) {
        instrs.push(Instr::Alu {
            op: [AluOp::Add, AluOp::Mul, AluOp::Div][rng.gen_range(0usize..3)],
            rd: Reg(1 + rng.gen_range(0u8..4)),
            rs1: Reg(rng.gen_range(0u8..5)),
            rs2: Reg(rng.gen_range(0u8..5)),
        });
    }
    // r4 = counter & 1, then branch over one instruction when odd —
    // taken/not-taken alternates every iteration.
    instrs.push(Instr::AluImm {
        op: AluOp::And,
        rd: Reg(4),
        rs1: Reg(5),
        imm: 1,
    });
    let skip_to = instrs.len() as u32 + 2;
    instrs.push(Instr::Branch {
        cond: BranchCond::Ne,
        rs1: Reg(4),
        rs2: Reg(0),
        target: skip_to,
    });
    instrs.push(Instr::Store {
        src: Reg(1),
        base: Reg(0),
        offset: rng.gen_range(0i32..8),
    });
    instrs.push(Instr::AluImm {
        op: AluOp::Sub,
        rd: Reg(5),
        rs1: Reg(5),
        imm: 1,
    });
    instrs.push(Instr::Branch {
        cond: BranchCond::Ne,
        rs1: Reg(5),
        rs2: Reg(0),
        target: head as u32,
    });
    instrs.push(Instr::Halt);
    Program {
        instrs,
        num_regs: 6,
        init_regs: vec![0, 4, 9, 2, 7, 0],
        init_mem: (0..32).map(|x| x as u32 * 5 + 3).collect(),
    }
}

/// A burst of loads and stores whose addresses all fall in the same
/// interleaved bank (stride = bank count), saturating it so requests
/// are rejected and re-offered for many cycles.
fn bank_conflict_program(rng: &mut StdRng, banks: usize) -> Program {
    let mut instrs = vec![Instr::LoadImm {
        rd: Reg(5),
        imm: 2 + rng.gen_range(0i32..4),
    }];
    let head = instrs.len();
    for j in 0..6 + rng.gen_range(0usize..6) {
        let addr = (j * banks) as i32 % 32;
        if rng.gen_bool(0.7) {
            instrs.push(Instr::Load {
                rd: Reg(1 + rng.gen_range(0u8..4)),
                base: Reg(0),
                offset: addr,
            });
        } else {
            instrs.push(Instr::Store {
                src: Reg(rng.gen_range(0u8..5)),
                base: Reg(0),
                offset: addr,
            });
        }
    }
    instrs.push(Instr::AluImm {
        op: AluOp::Sub,
        rd: Reg(5),
        rs1: Reg(5),
        imm: 1,
    });
    instrs.push(Instr::Branch {
        cond: BranchCond::Ne,
        rs1: Reg(5),
        rs2: Reg(0),
        target: head as u32,
    });
    instrs.push(Instr::Halt);
    Program {
        instrs,
        num_regs: 6,
        init_regs: vec![0, 4, 9, 2, 7, 0],
        init_mem: (0..32).map(|x| x as u32 * 3 + 1).collect(),
    }
}

/// The configuration matrix: every extension mechanism that interacts
/// with the silence analysis appears in at least one variant.
fn config(idx: usize) -> ProcConfig {
    let lat = LatencyModel {
        branch: 2,
        ..LatencyModel::default()
    };
    match idx {
        0 => ProcConfig::ultrascalar_i(8)
            .with_predictor(PredictorKind::Bimodal(16))
            .with_mem(MemConfig::realistic(8, 1 << 12))
            .with_latency(lat),
        1 => ProcConfig::ultrascalar_ii(8)
            .with_predictor(PredictorKind::Bimodal(16))
            .with_forwarding(ForwardModel::Pipelined { per_hop: 2 })
            .with_memory_renaming()
            .with_mem(MemConfig::realistic(8, 1 << 12))
            .with_latency(lat),
        2 => ProcConfig::hybrid(16, 4)
            .with_predictor(PredictorKind::Bimodal(16))
            .with_shared_alus(2)
            .with_trace_cache(1, 3)
            .with_fetch_width(3)
            .with_mem(MemConfig::realistic(16, 1 << 12))
            .with_latency(lat),
        3 => {
            // Slow, narrow banks: bank_occupancy 4 over 2 banks turns
            // the bank-conflict programs into sustained saturation.
            let mut mem = MemConfig::realistic(8, 1 << 12);
            mem.banks = 2;
            mem.bank_occupancy = 4;
            ProcConfig::ultrascalar_i(8)
                .with_predictor(PredictorKind::Taken)
                .with_mem(mem)
                .with_latency(lat)
        }
        _ => ProcConfig::ultrascalar_i(8).with_latency(lat),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn event_driven_matches_naive_reference(
        seed in proptest::prelude::any::<u64>(),
        flavor in 0usize..3,
        cfg_idx in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = config(cfg_idx);
        let prog = match flavor {
            0 => div_heavy_program(&mut rng),
            1 => misprediction_storm_program(&mut rng),
            _ => bank_conflict_program(&mut rng, cfg.mem.banks),
        };
        prop_assert!(prog.validate().is_ok(), "generator produced an invalid program");

        let fast = Ultrascalar::new(cfg.clone()).run(&prog);
        let slow = Ultrascalar::new(cfg.clone().without_cycle_skipping()).run(&prog);
        prop_assert_eq!(fast.halted, slow.halted, "engine halt divergence");
        prop_assert_eq!(fast.cycles, slow.cycles, "engine cycle-count divergence");
        prop_assert_eq!(&fast.regs, &slow.regs, "engine register divergence");
        prop_assert_eq!(&fast.mem, &slow.mem, "engine memory divergence");
        prop_assert_eq!(&fast.timings, &slow.timings, "engine per-instruction timing divergence");
        prop_assert_eq!(&fast.stats, &slow.stats, "engine statistics divergence");

        let fast = BaselineOoO::new(cfg.clone()).run(&prog);
        let slow = BaselineOoO::new(cfg.without_cycle_skipping()).run(&prog);
        prop_assert_eq!(fast.halted, slow.halted, "baseline halt divergence");
        prop_assert_eq!(fast.cycles, slow.cycles, "baseline cycle-count divergence");
        prop_assert_eq!(&fast.regs, &slow.regs, "baseline register divergence");
        prop_assert_eq!(&fast.mem, &slow.mem, "baseline memory divergence");
        prop_assert_eq!(&fast.timings, &slow.timings, "baseline per-instruction timing divergence");
        prop_assert_eq!(&fast.stats, &slow.stats, "baseline statistics divergence");
    }
}

/// Deterministic spot check that the skip path actually engages: a pure
/// division chain on a 4-wide machine idles for long spans, and both
/// paths must agree exactly while doing so.
#[test]
fn division_chain_exact_across_skip() {
    let prog = Program {
        instrs: vec![
            Instr::LoadImm {
                rd: Reg(1),
                imm: 1 << 20,
            },
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(2),
                rs1: Reg(0),
                imm: 3,
            },
            Instr::Alu {
                op: AluOp::Div,
                rd: Reg(1),
                rs1: Reg(1),
                rs2: Reg(2),
            },
            Instr::Alu {
                op: AluOp::Div,
                rd: Reg(1),
                rs1: Reg(1),
                rs2: Reg(2),
            },
            Instr::Alu {
                op: AluOp::Div,
                rd: Reg(1),
                rs1: Reg(1),
                rs2: Reg(2),
            },
            Instr::Alu {
                op: AluOp::Div,
                rd: Reg(1),
                rs1: Reg(1),
                rs2: Reg(2),
            },
            Instr::Halt,
        ],
        num_regs: 4,
        init_regs: vec![0; 4],
        init_mem: vec![0; 16],
    };
    for cfg in [
        ProcConfig::ultrascalar_i(4),
        ProcConfig::ultrascalar_ii(4),
        ProcConfig::hybrid(4, 2),
    ] {
        let fast = Ultrascalar::new(cfg.clone()).run(&prog);
        let slow = Ultrascalar::new(cfg.without_cycle_skipping()).run(&prog);
        assert!(fast.halted && slow.halted);
        assert_eq!(fast.cycles, slow.cycles);
        assert_eq!(fast.regs, slow.regs);
        assert_eq!(fast.timings, slow.timings);
        assert_eq!(fast.stats, slow.stats);
        // The dependent chain of 10-cycle divides must dominate the
        // run: this is the shape where skipping pays.
        assert!(fast.cycles > 40, "divide chain should span > 40 cycles");
    }
}
