//! Behavioural tests: the paper's Figure 3 timing diagram, window/
//! cluster-granularity effects (US-I vs hybrid vs US-II), one-cycle
//! misprediction recovery, and memory-bandwidth sensitivity.

use ultrascalar::{
    render_timing_diagram, LatencyModel, PredictorKind, ProcConfig, Processor, Ultrascalar,
};
use ultrascalar_isa::{assemble, workload};
use ultrascalar_memsys::{Bandwidth, MemConfig, NetworkKind};

/// Paper Figure 3: with division = 10, multiplication = 3, addition =
/// 1, the eight-instruction example issues exactly as the diagram
/// shows. (Our bars span `[issue, issue + latency − 1]`.)
#[test]
fn figure3_timing_reproduced_exactly() {
    let prog = workload::figure1_sequence();
    let mut p = Ultrascalar::new(ProcConfig::ultrascalar_i(8));
    let r = p.run(&prog);
    assert!(r.halted);
    // (issue, complete) per instruction in program order.
    let expect = [
        (0, 9),   // R3 = R1 / R2   : div, 10 cycles
        (10, 10), // R0 = R0 + R3   : waits for the divide
        (0, 0),   // R1 = R5 + R6   : independent
        (11, 11), // R1 = R0 + R1   : waits for the R0 add
        (0, 2),   // R2 = R5 * R6   : mul, 3 cycles
        (3, 3),   // R2 = R2 + R4   : waits for the multiply
        (0, 0),   // R0 = R5 - R6   : independent (renamed past R0!)
        (1, 1),   // R4 = R0 + R7   : waits for the subtract
    ];
    let got: Vec<(u64, u64)> = r
        .timings
        .iter()
        .take(8)
        .map(|t| (t.issue, t.complete))
        .collect();
    assert_eq!(got, expect, "\n{}", render_timing_diagram(&r.timings));
    // The out-of-order hallmark from the paper's §2 narrative: the
    // instruction in station 4 computes right away while the *earlier*
    // write of R0 in station 7 waits ten cycles for the divide.
    assert!(got[6].0 < got[1].0);
}

/// The same dataflow on the Ultrascalar II (one batch of 8): identical
/// issue times, because the batch fits in one window generation.
#[test]
fn figure3_identical_on_usii_single_batch() {
    let prog = workload::figure1_sequence();
    let a = Ultrascalar::new(ProcConfig::ultrascalar_i(16)).run(&prog);
    let b = Ultrascalar::new(ProcConfig::ultrascalar_ii(16)).run(&prog);
    let ta: Vec<_> = a.timings.iter().map(|t| (t.issue, t.complete)).collect();
    let tb: Vec<_> = b.timings.iter().map(|t| (t.issue, t.complete)).collect();
    assert_eq!(ta, tb);
}

/// A serial dependency chain retires one instruction per cycle once the
/// pipe is warm: back-to-back forwarding in one clock, as the paper
/// requires ("newly written results propagate to all readers in one
/// clock cycle").
#[test]
fn dependent_chain_sustains_one_per_cycle() {
    let src = "
        li r0, 0
        addi r0, r0, 1
        addi r0, r0, 1
        addi r0, r0, 1
        addi r0, r0, 1
        addi r0, r0, 1
        halt
    ";
    let prog = assemble(src, 1).unwrap();
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(16)).run(&prog);
    for (i, t) in r.timings.iter().take(6).enumerate() {
        assert_eq!(t.issue, i as u64, "instruction {i} issue");
    }
    assert_eq!(r.regs[0], 5);
}

/// Independent instructions all issue in cycle 0 when the window holds
/// them — issue width really is `n`.
#[test]
fn independent_instructions_issue_simultaneously() {
    let src = "
        li r0, 1
        li r1, 2
        li r2, 3
        li r3, 4
        li r4, 5
        li r5, 6
        li r6, 7
        li r7, 8
        halt
    ";
    let prog = assemble(src, 8).unwrap();
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(16)).run(&prog);
    assert!(r.timings.iter().take(8).all(|t| t.issue == 0));
}

/// Window-granularity ablation (the paper's §4: the US-II "is less
/// efficient than the Ultrascalar I because its datapath does not wrap
/// around. As a result, stations idle waiting for everyone to finish
/// before refilling"): on a long serial chain, cycles(US-I) ≤
/// cycles(hybrid) ≤ cycles(US-II), strictly at the ends.
#[test]
fn cluster_granularity_costs_cycles_on_serial_code() {
    let prog = workload::fibonacci(64);
    let n = 16;
    let usi = Ultrascalar::new(ProcConfig::ultrascalar_i(n)).run(&prog);
    let hy4 = Ultrascalar::new(ProcConfig::hybrid(n, 4)).run(&prog);
    let usii = Ultrascalar::new(ProcConfig::ultrascalar_ii(n)).run(&prog);
    assert!(usi.halted && hy4.halted && usii.halted);
    assert!(
        usi.cycles <= hy4.cycles && hy4.cycles <= usii.cycles,
        "US-I {} ≤ hybrid {} ≤ US-II {}",
        usi.cycles,
        hy4.cycles,
        usii.cycles
    );
    assert!(usi.cycles < usii.cycles, "batch barrier must cost cycles");
}

/// All three models agree on fully parallel code (the window barrier
/// doesn't matter when every batch fills with independent work).
#[test]
fn cluster_granularity_is_free_on_parallel_code() {
    let src = "
        li r0, 1
        li r1, 2
        li r2, 3
        li r3, 4
        halt
    ";
    let prog = assemble(src, 4).unwrap();
    let a = Ultrascalar::new(ProcConfig::ultrascalar_i(4)).run(&prog);
    let b = Ultrascalar::new(ProcConfig::ultrascalar_ii(4)).run(&prog);
    // Not asserting equality of total cycles (commit granularity still
    // differs by a constant); issue cycles of the four `li`s match.
    assert_eq!(
        a.timings.iter().map(|t| t.issue).collect::<Vec<_>>()[..4],
        b.timings.iter().map(|t| t.issue).collect::<Vec<_>>()[..4]
    );
}

/// Bigger windows help ILP-rich code.
#[test]
fn wider_windows_raise_ipc_on_parallel_kernels() {
    let prog = workload::vec_scale(64, 3);
    let mut prev_cycles = u64::MAX;
    for n in [1usize, 2, 4, 8, 16] {
        let r = Ultrascalar::new(ProcConfig::ultrascalar_i(n)).run(&prog);
        assert!(r.halted);
        assert!(
            r.cycles <= prev_cycles,
            "n={n}: {} > previous {}",
            r.cycles,
            prev_cycles
        );
        prev_cycles = r.cycles;
    }
}

/// Misprediction recovery really is one cycle: a mispredicted branch
/// with a NotTaken predictor costs (resolve − fetch) + 1 refill cycle,
/// not a pipeline drain. We compare a taken-branch loop under a perfect
/// and a never-taken predictor and bound the per-iteration penalty.
#[test]
fn one_cycle_misprediction_recovery_penalty_bound() {
    let prog = workload::fibonacci(40);
    let n = 8;
    let perfect = Ultrascalar::new(ProcConfig::ultrascalar_i(n)).run(&prog);
    let nottaken =
        Ultrascalar::new(ProcConfig::ultrascalar_i(n).with_predictor(PredictorKind::NotTaken))
            .run(&prog);
    assert!(perfect.halted && nottaken.halted);
    assert_eq!(perfect.regs, nottaken.regs);
    let mispredicts = nottaken.stats.mispredictions;
    assert!(mispredicts >= 39, "each loop-back branch mispredicts");
    // Each misprediction can cost at most a few cycles (resolve +
    // 1-cycle refetch); it must never approach a full window drain.
    let penalty = nottaken.cycles.saturating_sub(perfect.cycles);
    assert!(
        penalty <= 4 * mispredicts,
        "penalty {penalty} too high for {mispredicts} mispredictions"
    );
    assert!(nottaken.stats.flushed > 0);
}

/// The bimodal predictor learns the loop and beats static not-taken.
#[test]
fn bimodal_beats_nottaken_on_loops() {
    let prog = workload::sum_reduction(64);
    let n = 8;
    let nt = Ultrascalar::new(ProcConfig::ultrascalar_i(n).with_predictor(PredictorKind::NotTaken))
        .run(&prog);
    let bi =
        Ultrascalar::new(ProcConfig::ultrascalar_i(n).with_predictor(PredictorKind::Bimodal(64)))
            .run(&prog);
    assert!(bi.stats.mispredictions < nt.stats.mispredictions);
    assert!(bi.cycles <= nt.cycles);
}

/// Memory bandwidth effects (the paper's "memory bandwidth is the
/// dominating factor"): a load-parallel kernel slows down monotonically
/// as M(n) shrinks from full to constant. (Loads wait only on older
/// *stores*, so a store-free burst is limited purely by the fat tree.)
#[test]
fn lower_memory_bandwidth_costs_cycles() {
    let mut src = String::from("li r0, 0\n");
    for i in 0..32 {
        src.push_str(&format!("lw r{}, {}(r0)\n", 1 + i % 15, i));
    }
    src.push_str("halt\n");
    let prog = assemble(&src, 16).unwrap();
    let n = 16;
    let mut cycles = Vec::new();
    for bw in [
        Bandwidth::full(),
        Bandwidth::sqrt(),
        Bandwidth::constant(1.0),
    ] {
        let mem = MemConfig {
            n_leaves: n,
            bandwidth: bw,
            banks: 16,
            bank_occupancy: 1,
            hop_latency: 0,
            base_latency: 0,
            words: 1 << 12,
            network: NetworkKind::FatTree,
            cluster_cache: None,
        };
        let r = Ultrascalar::new(ProcConfig::ultrascalar_i(n).with_mem(mem)).run(&prog);
        assert!(r.halted);
        cycles.push(r.cycles);
    }
    assert!(
        cycles[0] <= cycles[1] && cycles[1] <= cycles[2],
        "cycles must rise as bandwidth falls: {cycles:?}"
    );
    assert!(cycles[0] < cycles[2]);
}

/// Loads must observe all older stores (conservative memory
/// serialisation): a store followed by a dependent load through memory.
#[test]
fn store_to_load_ordering_is_respected() {
    let src = "
        li r1, 5
        li r2, 99
        sw r2, (r1)
        lw r3, (r1)
        addi r3, r3, 1
        halt
    ";
    let prog = assemble(src, 4).unwrap();
    for cfg in [
        ProcConfig::ultrascalar_i(8),
        ProcConfig::ultrascalar_ii(8),
        ProcConfig::hybrid(8, 4),
    ] {
        let r = Ultrascalar::new(cfg).run(&prog);
        assert_eq!(r.regs[3], 100);
        assert_eq!(r.mem[5], 99);
    }
}

/// Stores must not issue speculatively: a store behind a mispredicted
/// branch never reaches memory.
#[test]
fn wrong_path_stores_never_commit() {
    let src = "
        li   r1, 1
        li   r2, 7
        beq  r1, r1, skip   ; always taken
        sw   r2, (r1)       ; wrong path: must not write mem[1]
    skip:
        halt
    ";
    let prog = assemble(src, 4).unwrap();
    // Force a misprediction with the NotTaken predictor.
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(8).with_predictor(PredictorKind::NotTaken))
        .run(&prog);
    assert!(r.halted);
    assert_eq!(r.mem[1], 0, "speculative store leaked to memory");
    assert!(r.stats.mispredictions >= 1);
}

/// Forwarding-distance statistics: a serial chain forwards at distance
/// 1; the paper's §7 locality argument expects a high local fraction.
#[test]
fn forwarding_distance_histogram_on_serial_chain() {
    let src = "
        li r0, 0
        addi r0, r0, 1
        addi r0, r0, 1
        addi r0, r0, 1
        halt
    ";
    let prog = assemble(src, 1).unwrap();
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(8)).run(&prog);
    assert!(r.stats.local_forward_fraction() > 0.99);
}

/// The unit-latency model collapses Figure 3 to pure dependence depth.
#[test]
fn unit_latencies_give_dependence_depth() {
    let prog = workload::figure1_sequence();
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(8).with_latency(LatencyModel::unit()))
        .run(&prog);
    let issues: Vec<u64> = r.timings.iter().take(8).map(|t| t.issue).collect();
    // Dependence depths: div=0; add(R0)=1; add(R1)=0; add(R1')=2;
    // mul=0; add(R2)=1; sub=0; add(R4)=1.
    assert_eq!(issues, vec![0, 1, 0, 2, 0, 1, 0, 1]);
}

/// IPC accounting sanity: committed ≤ cycles × n, occupancy ≤ n.
#[test]
fn stats_invariants_hold() {
    for (name, prog) in workload::standard_suite(23) {
        let n = 8;
        let r = Ultrascalar::new(
            ProcConfig::ultrascalar_i(n).with_predictor(PredictorKind::Bimodal(16)),
        )
        .run(&prog);
        assert!(r.halted, "{name}");
        assert!(r.stats.committed <= r.cycles * n as u64, "{name}");
        assert!(r.stats.mean_occupancy() <= n as f64 + 1e-9, "{name}");
        assert!(r.ipc() > 0.0, "{name}");
        assert_eq!(r.timings.len() as u64, r.stats.committed, "{name}");
        // Timings are causally sane.
        for t in &r.timings {
            assert!(t.complete >= t.issue, "{name}");
        }
    }
}

/// The issue-rate histogram accounts for every committed (plus
/// wrong-path) issue and its mean matches cycles/instructions.
#[test]
fn issue_histogram_is_consistent() {
    let prog = workload::dot_product(32);
    let r = Ultrascalar::new(ProcConfig::ultrascalar_i(8)).run(&prog);
    let cycles_counted: u64 = r.stats.issue_hist.iter().sum();
    assert_eq!(cycles_counted, r.cycles);
    let issued: u64 = r
        .stats
        .issue_hist
        .iter()
        .enumerate()
        .map(|(k, &c)| k as u64 * c)
        .sum();
    // With a perfect oracle nothing is flushed: every issue commits.
    assert_eq!(issued, r.stats.committed);
    assert!(r.stats.mean_issue_rate() > 0.0);
    // No cycle can issue more than the window width.
    assert!(r.stats.issue_hist.len() <= 8 + 1);
}
