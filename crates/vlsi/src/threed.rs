//! Three-dimensional packaging bounds (§7).
//!
//! The paper states (without full derivation) that in a true 3-D
//! technology:
//!
//! * an Ultrascalar I with small memory bandwidth lays out in volume
//!   `Θ(n·L^(3/2))` with wire lengths `Θ(n^(1/3)·L^(1/2))`; large
//!   bandwidth (`M(n) = Ω(n^(2/3+ε))`) requires an additional volume of
//!   `Θ(M(n)^(3/2))` (the bounding box's *surface* must carry `Ω(M(n))`
//!   wires, so its side is `Ω(M(n)^(1/2))`);
//! * the Ultrascalar II requires volume `Θ(n² + L²)` whether linear- or
//!   log-depth circuits are used (in 3-D the mesh-of-trees loses its
//!   extra log factor);
//! * the hybrid's optimal cluster size becomes `C* = Θ(L^(3/4))` and its
//!   volume `Θ(n·L^(3/4))` (vs `Θ(n·L)` area in 2-D).
//!
//! These are evaluated as calibrated closed forms (the paper gives no
//! recurrences for 3-D); constants derive from the technology's cell
//! volume so the 2-D and 3-D models are commensurable.

use crate::metrics::ArchParams;
use crate::tech::Tech;

/// Unit volume: one datapath cell extruded to a cube, µm³.
fn cell_volume(tech: &Tech) -> f64 {
    tech.cell_side_um.powi(3)
}

/// 3-D metric record (volumes instead of areas).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics3d {
    /// Volume, µm³.
    pub volume_um3: f64,
    /// Longest wire, µm.
    pub wire_um: f64,
    /// Bounding-cube side, µm.
    pub side_um: f64,
}

impl Metrics3d {
    fn from_volume(volume_um3: f64, wire_um: f64) -> Self {
        Metrics3d {
            volume_um3,
            wire_um,
            side_um: volume_um3.cbrt(),
        }
    }
}

/// Ultrascalar I in 3-D.
pub fn usi_3d(p: &ArchParams, tech: &Tech) -> Metrics3d {
    let n = p.n as f64;
    let l = p.l as f64;
    let m = p.mem.eval(p.n);
    let base = cell_volume(tech) * (p.bits as f64) * n * l.powf(1.5);
    // Large bandwidth adds Θ(M^(3/2)) volume; the wire bound is the
    // larger of the datapath and the memory-surface requirements.
    let mem_extra = cell_volume(tech) * (p.bits as f64) * m.powf(1.5);
    let wire =
        tech.cell_side_um * (p.bits as f64).sqrt() * (n.powf(1.0 / 3.0) * l.sqrt()).max(m.sqrt());
    Metrics3d::from_volume(base + mem_extra, wire)
}

/// Ultrascalar II in 3-D: volume `Θ(n² + L²)` for both the linear and
/// the log-depth circuits.
pub fn usii_3d(p: &ArchParams, tech: &Tech) -> Metrics3d {
    let n = p.n as f64;
    let l = p.l as f64;
    let v = cell_volume(tech) * (p.bits as f64) * (n * n + l * l);
    let wire = 2.0 * v.cbrt();
    Metrics3d::from_volume(v, wire)
}

/// The 3-D optimal cluster size `C* = Θ(L^(3/4))`.
pub fn optimal_cluster_3d(l: usize) -> usize {
    (l as f64).powf(0.75).round().max(1.0) as usize
}

/// Hybrid in 3-D at the optimal cluster size: volume `Θ(n·L^(3/4))`.
pub fn hybrid_3d(p: &ArchParams, tech: &Tech) -> Metrics3d {
    let n = p.n as f64;
    let l = p.l as f64;
    let m = p.mem.eval(p.n);
    let v = cell_volume(tech) * (p.bits as f64) * (n * l.powf(0.75) + m.powf(1.5));
    let wire = 2.0 * v.cbrt();
    Metrics3d::from_volume(v, wire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_exponent_tail;
    use ultrascalar_memsys::Bandwidth;

    fn params(n: usize, l: usize, mem: Bandwidth) -> ArchParams {
        ArchParams {
            n,
            l,
            bits: 32,
            mem,
        }
    }

    fn sweep_n(f: impl Fn(usize) -> f64) -> crate::fit::ExponentFit {
        let pts: Vec<(f64, f64)> = (6..=16)
            .map(|k| ((1u64 << k) as f64, f(1usize << k)))
            .collect();
        fit_exponent_tail(&pts, 5)
    }

    #[test]
    fn usi_3d_volume_linear_in_n_small_bandwidth() {
        let tech = Tech::cmos_035();
        let f = sweep_n(|n| usi_3d(&params(n, 32, Bandwidth::constant(1.0)), &tech).volume_um3);
        assert!((f.exponent - 1.0).abs() < 0.05, "{f:?}");
    }

    #[test]
    fn usi_3d_wire_is_cube_root_in_n() {
        let tech = Tech::cmos_035();
        let f = sweep_n(|n| usi_3d(&params(n, 32, Bandwidth::constant(1.0)), &tech).wire_um);
        assert!((f.exponent - 1.0 / 3.0).abs() < 0.05, "{f:?}");
    }

    #[test]
    fn usi_3d_large_bandwidth_dominates() {
        let tech = Tech::cmos_035();
        // M(n) = n: volume must grow as n^(3/2). A small L keeps the
        // Θ(n·L^(3/2)) base term from masking the asymptote in-range.
        let f = sweep_n(|n| usi_3d(&params(n, 2, Bandwidth::full()), &tech).volume_um3);
        assert!((f.exponent - 1.5).abs() < 0.08, "{f:?}");
    }

    #[test]
    fn usii_3d_volume_quadratic() {
        let tech = Tech::cmos_035();
        let f = sweep_n(|n| usii_3d(&params(n, 32, Bandwidth::full()), &tech).volume_um3);
        assert!((f.exponent - 2.0).abs() < 0.05, "{f:?}");
    }

    #[test]
    fn optimal_cluster_3d_is_l_to_three_quarters() {
        assert_eq!(optimal_cluster_3d(16), 8);
        assert_eq!(optimal_cluster_3d(256), 64);
        assert_eq!(optimal_cluster_3d(1), 1);
    }

    #[test]
    fn hybrid_3d_beats_2d_scaling_in_l() {
        // Volume Θ(n·L^(3/4)) vs area Θ(n·L): the 3-D hybrid's
        // L-exponent is 3/4.
        let tech = Tech::cmos_035();
        let pts: Vec<(f64, f64)> = (3..=9)
            .map(|k| {
                let l = 1usize << k;
                (
                    l as f64,
                    hybrid_3d(&params(1 << 14, l, Bandwidth::constant(1.0)), &tech).volume_um3,
                )
            })
            .collect();
        let f = fit_exponent_tail(&pts, 4);
        assert!((f.exponent - 0.75).abs() < 0.05, "{f:?}");
    }

    #[test]
    fn hybrid_3d_dominates_usi_3d() {
        let tech = Tech::cmos_035();
        for k in [10u32, 14] {
            let p = params(1 << k, 64, Bandwidth::constant(1.0));
            assert!(hybrid_3d(&p, &tech).volume_um3 < usi_3d(&p, &tech).volume_um3);
        }
    }
}
