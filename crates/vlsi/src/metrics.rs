//! The architectural parameter record and the per-layout metric record
//! (one cell group of the paper's Figure 11).

use ultrascalar_memsys::Bandwidth;

/// Architectural parameters a layout is evaluated at.
#[derive(Debug, Clone, Copy)]
pub struct ArchParams {
    /// Window / issue width `n` (number of execution stations).
    pub n: usize,
    /// Logical register count `L`.
    pub l: usize,
    /// Register width in bits (the paper uses 32 and 64).
    pub bits: usize,
    /// Memory bandwidth profile `M(·)`.
    pub mem: Bandwidth,
}

impl ArchParams {
    /// The paper's empirical configuration: 32 × 32-bit registers,
    /// constant (unit) memory bandwidth ("we left space in the design
    /// for a small datapath of size M(n) = Θ(1)").
    pub fn paper_empirical(n: usize) -> Self {
        ArchParams {
            n,
            l: 32,
            bits: 32,
            mem: Bandwidth::constant(1.0),
        }
    }
}

/// The measured complexity of one layout at one parameter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Critical-path gate levels (unit gate delays).
    pub gate_delay: f64,
    /// Longest signal wire, µm.
    pub wire_um: f64,
    /// Layout side length, µm.
    pub side_um: f64,
    /// Layout area, µm² (`side²`; the VLSI area is the square of the
    /// wire delay in every design, as the paper notes).
    pub area_um2: f64,
}

impl Metrics {
    /// Build from side/wire/gates, with `area = side²`.
    pub fn from_side(gate_delay: f64, wire_um: f64, side_um: f64) -> Self {
        Metrics {
            gate_delay,
            wire_um,
            side_um,
            area_um2: side_um * side_um,
        }
    }

    /// Total delay in ps under a technology (gate + repeatered wire) —
    /// the paper's "Total Delay" row combines both regimes.
    pub fn total_delay_ps(&self, tech: &crate::tech::Tech) -> f64 {
        tech.total_delay_ps(self.gate_delay, self.wire_um)
    }

    /// Area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_um2 / 1e6
    }

    /// Side length in cm.
    pub fn side_cm(&self) -> f64 {
        self.side_um / 1e4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_side_squared() {
        let m = Metrics::from_side(3.0, 10.0, 100.0);
        assert_eq!(m.area_um2, 10_000.0);
        assert!((m.area_mm2() - 0.01).abs() < 1e-12);
        assert!((m.side_cm() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn paper_empirical_params() {
        let p = ArchParams::paper_empirical(64);
        assert_eq!((p.n, p.l, p.bits), (64, 32, 32));
        assert_eq!(p.mem.capacity(64), 1);
    }
}
