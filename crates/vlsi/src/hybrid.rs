//! The hybrid Ultrascalar: Ultrascalar II clusters inside an
//! Ultrascalar I H-tree (Figures 9–10), with the §6 analysis.
//!
//! ```text
//! U(n) = Θ(n + L)                      if n ≤ C   (a single cluster)
//! U(n) = Θ(L + M(n)) + 2·U(n/4)        if n > C
//! ```
//!
//! For `n ≥ C` the solution is `U(n) = Θ(M(n) + L·√(n/C) + √(nC))`;
//! differentiating gives the optimal cluster size `C* = Θ(L)`, at which
//! `U(n) = Θ(M(n) + √(nL))` — "optimal as a function of M and
//! existentially tight as a function of n and L".

use crate::metrics::{ArchParams, Metrics};
use crate::tech::Tech;
use crate::{usi, usii};

/// Side length (µm) of a hybrid with clusters of `c` stations:
/// an H-tree over `n/c` leaves, each leaf a linear-gate-delay
/// Ultrascalar II cluster of `c` stations (plus its modified-bit OR
/// trees, Figure 9 — a constant-factor strip folded into the cluster
/// pitch).
///
/// # Panics
/// Panics unless `c` divides `n` and `n/c` is a power of two (H-tree
/// granularity; `c == n` degenerates to a single cluster).
pub fn side_um(p: &ArchParams, c: usize, tech: &Tech) -> f64 {
    let (w, h, _) = layout(p, c, tech);
    w.max(h)
}

fn layout(p: &ArchParams, c: usize, tech: &Tech) -> (f64, f64, f64) {
    assert!(c >= 1 && c <= p.n, "cluster size must be in 1..=n");
    assert!(p.n.is_multiple_of(c), "cluster size must divide n");
    let k = p.n / c;
    assert!(
        k.is_power_of_two(),
        "number of clusters must be a power of two for the H-tree"
    );
    let cluster = ArchParams { n: c, ..*p };
    let leaf = usii::side_linear_um(&cluster, tech);
    let chan = |clusters: usize| usi::channel_um(p.l, p.bits, p.mem.capacity(clusters * c), tech);
    usi::htree(k, leaf, &chan)
}

/// Gate levels: the linear cluster search (`Θ(C + L)`) plus the
/// inter-cluster CSPP tree (`Θ(log(n/C))`) — Figure 11 column 4's
/// `Θ(L + log n)` when `C = Θ(L)`.
pub fn gate_delay(p: &ArchParams, c: usize) -> f64 {
    let cluster = ArchParams { n: c, ..*p };
    usii::gate_delay_linear(&cluster) + usi::gate_delay((p.n / c).max(1))
}

/// Full metric record at cluster size `c`.
pub fn metrics_with_cluster(p: &ArchParams, c: usize, tech: &Tech) -> Metrics {
    let (w, h, wire) = layout(p, c, tech);
    let cluster = ArchParams { n: c, ..*p };
    // Worst path: across the source cluster, up and down the H-tree,
    // across the destination cluster.
    let cluster_crossing = 2.0 * usii::side_linear_um(&cluster, tech);
    Metrics {
        gate_delay: gate_delay(p, c),
        wire_um: 2.0 * wire + 2.0 * cluster_crossing,
        side_um: w.max(h),
        area_um2: w * h,
    }
}

/// Metrics at the paper's prescribed cluster size `C = L` (rounded to
/// the nearest feasible power-of-two divisor of `n`).
pub fn metrics(p: &ArchParams, tech: &Tech) -> Metrics {
    let c = nearest_feasible_cluster(p.n, p.l);
    metrics_with_cluster(p, c, tech)
}

/// The feasible cluster sizes for a window of `n`: powers of two `c`
/// with `n % c == 0` and `n/c` a power of two.
pub fn feasible_clusters(n: usize) -> Vec<usize> {
    (0..=n.trailing_zeros())
        .map(|s| 1usize << s)
        .filter(|&c| n.is_multiple_of(c) && (n / c).is_power_of_two())
        .collect()
}

/// The feasible cluster size closest to `target` (the paper's `C = L`).
pub fn nearest_feasible_cluster(n: usize, target: usize) -> usize {
    feasible_clusters(n)
        .into_iter()
        .min_by(|&a, &b| {
            let da = (a as f64 / target as f64).ln().abs();
            let db = (b as f64 / target as f64).ln().abs();
            da.partial_cmp(&db).expect("finite")
        })
        .expect("n has at least cluster size 1")
}

/// §6's optimisation: sweep every feasible cluster size and return the
/// one minimising the side length, with its metrics.
pub fn optimal_cluster(p: &ArchParams, tech: &Tech) -> (usize, Metrics) {
    feasible_clusters(p.n)
        .into_iter()
        .map(|c| (c, metrics_with_cluster(p, c, tech)))
        .min_by(|a, b| {
            a.1.side_um
                .partial_cmp(&b.1.side_um)
                .expect("finite side lengths")
        })
        .expect("non-empty cluster sweep")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_exponent_tail;
    use ultrascalar_memsys::Bandwidth;

    fn params(n: usize, l: usize, mem: Bandwidth) -> ArchParams {
        ArchParams {
            n,
            l,
            bits: 32,
            mem,
        }
    }

    #[test]
    fn feasible_clusters_are_power_of_two_divisors() {
        assert_eq!(feasible_clusters(32), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(feasible_clusters(1), vec![1]);
    }

    #[test]
    fn nearest_feasible_tracks_target() {
        assert_eq!(nearest_feasible_cluster(256, 32), 32);
        assert_eq!(nearest_feasible_cluster(256, 48), 64); // ln-closest
        assert_eq!(nearest_feasible_cluster(8, 32), 8); // clamped to n
    }

    /// §6: "the side-length is minimized when C = Θ(L)". The sweep's
    /// argmin must land within a small constant factor of L.
    #[test]
    fn optimal_cluster_is_theta_l() {
        let tech = Tech::cmos_035();
        for l in [8usize, 16, 32, 64] {
            let p = params(1 << 12, l, Bandwidth::constant(1.0));
            let (c_star, _) = optimal_cluster(&p, &tech);
            assert!(
                c_star >= l / 4 && c_star <= l * 8,
                "L={l}: optimal cluster {c_star} not Θ(L)"
            );
        }
    }

    /// Figure 11 column 4: with C = Θ(L) and low bandwidth the hybrid's
    /// wire delay grows as √n.
    #[test]
    fn hybrid_side_grows_as_sqrt_n() {
        let tech = Tech::cmos_035();
        let pts: Vec<(f64, f64)> = (2..=8)
            .map(|k| {
                let n = 32 << (2 * k); // keep n/C a power of two
                let p = params(n, 32, Bandwidth::constant(1.0));
                (n as f64, metrics(&p, &tech).side_um)
            })
            .collect();
        let f = fit_exponent_tail(&pts, 4);
        assert!((f.exponent - 0.5).abs() < 0.06, "{f:?}");
    }

    /// §6/§7: for n ≥ L the hybrid (at its optimal cluster size)
    /// dominates both parents, strictly once n is well past L².
    #[test]
    fn hybrid_dominates_both_parents_for_large_n() {
        let tech = Tech::cmos_035();
        let l = 32;
        for k in [10u32, 12, 14, 16] {
            let n = 1usize << k;
            let mem = Bandwidth::constant(1.0);
            let p = params(n, l, mem);
            let (_, hy) = optimal_cluster(&p, &tech);
            let u1 = usi::metrics(&p, &tech);
            let u2 = usii::metrics_linear(&p, &tech);
            assert!(
                hy.side_um <= u1.side_um && hy.side_um <= u2.side_um,
                "n={n}: hybrid {} vs US-I {} vs US-II {}",
                hy.side_um,
                u1.side_um,
                u2.side_um
            );
            if k >= 14 {
                assert!(hy.side_um < 0.8 * u1.side_um.min(u2.side_um), "n={n}");
            }
        }
    }

    /// "the hybrid beats the Ultrascalar I by an additional factor of
    /// √L" (wire delay, low bandwidth): the ratio of US-I to hybrid
    /// sides grows with L.
    #[test]
    fn hybrid_advantage_grows_with_l() {
        let tech = Tech::cmos_035();
        let n = 1 << 12;
        let r = |l: usize| {
            let p = params(n, l, Bandwidth::constant(1.0));
            usi::metrics(&p, &tech).side_um / metrics(&p, &tech).side_um
        };
        assert!(r(64) > r(16), "{} vs {}", r(64), r(16));
        assert!(r(64) > 1.5);
    }

    #[test]
    fn degenerate_cluster_sizes() {
        let tech = Tech::cmos_035();
        let p = params(64, 32, Bandwidth::constant(1.0));
        // C = n: a single US-II cluster (no H-tree channels).
        let m = metrics_with_cluster(&p, 64, &tech);
        let u2 = usii::metrics_linear(&p, &tech);
        assert!((m.side_um - u2.side_um).abs() < 1e-6);
        // C = 1: pure US-I topology (stations as leaves), though the
        // leaf includes the one-station grid wrapper.
        let m1 = metrics_with_cluster(&p, 1, &tech);
        assert!(m1.side_um > 0.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_cluster_rejected() {
        let tech = Tech::cmos_035();
        let p = params(64, 32, Bandwidth::constant(1.0));
        let _ = side_um(&p, 3, &tech);
    }

    /// Gate delay is Θ(L + log n): linear in L at fixed n/C ratio,
    /// logarithmic in n at fixed C.
    #[test]
    fn gate_delay_shape() {
        let p = params(1 << 10, 32, Bandwidth::constant(1.0));
        let d32 = gate_delay(&p, 32);
        let p2 = params(1 << 14, 32, Bandwidth::constant(1.0));
        let d32_big = gate_delay(&p2, 32);
        // 16× more stations: only a handful more gate levels (log term).
        assert!(d32_big - d32 < 20.0);
        // Bigger clusters: linear growth.
        let d128 = gate_delay(&p2, 128);
        assert!(d128 > d32_big + 150.0);
    }
}
