//! The paper's Figure 12: the empirical Magic-layout comparison.
//!
//! Paper §7: a 64-instruction-wide Ultrascalar I register datapath
//! occupies 7 cm × 7 cm (≈13,000 stations/m²), while a
//! 128-instruction-wide 4-cluster hybrid occupies 3.2 cm × 2.7 cm
//! (≈150,000 stations/m², "about 11.5 times denser"), both in a
//! 0.35 µm, 3-metal CMOS process with 32 × 32-bit logical registers and
//! space reserved for an `M(n) = Θ(1)` memory datapath.
//!
//! [`figure12`] evaluates our floorplan models at exactly those
//! parameter points. The technology constants in
//! [`Tech::cmos_035`](crate::tech::Tech::cmos_035) are calibrated once
//! against the paper's 7 cm Ultrascalar I measurement; the hybrid
//! number and the density ratio are then *predictions* of the model,
//! reproducing the paper's ≈11.5× within modelling error.

use crate::metrics::ArchParams;
use crate::tech::Tech;
use crate::{hybrid, usi};

/// One side of the Figure 12 comparison.
#[derive(Debug, Clone, Copy)]
pub struct LayoutReport {
    /// Stations in the datapath.
    pub stations: usize,
    /// Layout width, cm.
    pub width_cm: f64,
    /// Layout height, cm.
    pub height_cm: f64,
    /// Stations per square metre.
    pub stations_per_m2: f64,
}

impl LayoutReport {
    fn new(stations: usize, width_um: f64, height_um: f64) -> Self {
        let area_m2 = (width_um / 1e6) * (height_um / 1e6);
        LayoutReport {
            stations,
            width_cm: width_um / 1e4,
            height_cm: height_um / 1e4,
            stations_per_m2: stations as f64 / area_m2,
        }
    }

    /// Area in cm².
    pub fn area_cm2(&self) -> f64 {
        self.width_cm * self.height_cm
    }
}

/// The complete Figure 12 result.
#[derive(Debug, Clone, Copy)]
pub struct Figure12 {
    /// The 64-wide Ultrascalar I register datapath (paper: 7 cm × 7 cm).
    pub ultrascalar_i: LayoutReport,
    /// The 128-wide, 4-cluster hybrid (paper: 3.2 cm × 2.7 cm).
    pub hybrid: LayoutReport,
    /// Density ratio hybrid / US-I (paper: ≈11.5).
    pub density_ratio: f64,
}

/// Evaluate the Figure 12 comparison under a technology.
pub fn figure12(tech: &Tech) -> Figure12 {
    // 64-wide Ultrascalar I, 32 × 32-bit registers, M(n) = Θ(1).
    let p_usi = ArchParams::paper_empirical(64);
    let m_usi = usi::metrics(&p_usi, tech);
    let usi_report = LayoutReport::new(64, m_usi.side_um, m_usi.area_um2 / m_usi.side_um);

    // 128-wide hybrid: 4 clusters of 32 stations (C = L = 32).
    let p_hy = ArchParams::paper_empirical(128);
    let m_hy = hybrid::metrics_with_cluster(&p_hy, 32, tech);
    let hy_report = LayoutReport::new(128, m_hy.side_um, m_hy.area_um2 / m_hy.side_um);

    Figure12 {
        ultrascalar_i: usi_report,
        hybrid: hy_report,
        density_ratio: hy_report.stations_per_m2 / usi_report.stations_per_m2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Calibration anchor: the paper measured the 64-wide US-I at
    /// 7 cm × 7 cm. Our constants must land within 20 %.
    #[test]
    fn usi_64_calibrated_to_seven_cm() {
        let f = figure12(&Tech::cmos_035());
        let side = f.ultrascalar_i.width_cm;
        assert!(
            (side - 7.0).abs() / 7.0 < 0.2,
            "US-I side {side} cm (paper: 7 cm)"
        );
    }

    /// The model's *prediction*: the hybrid is an order of magnitude
    /// denser — the paper's ≈11.5× within modelling tolerance.
    #[test]
    fn hybrid_density_ratio_matches_paper() {
        let f = figure12(&Tech::cmos_035());
        assert!(
            f.density_ratio > 6.0 && f.density_ratio < 20.0,
            "density ratio {} (paper: ≈11.5)",
            f.density_ratio
        );
    }

    /// The hybrid datapath is far smaller despite holding twice the
    /// stations.
    #[test]
    fn hybrid_area_is_much_smaller() {
        let f = figure12(&Tech::cmos_035());
        assert!(f.hybrid.stations == 2 * f.ultrascalar_i.stations);
        assert!(f.hybrid.area_cm2() < f.ultrascalar_i.area_cm2() / 3.0);
    }

    /// The paper's closing projection: at 0.1 µm a 128-window hybrid
    /// fits "easily within a chip 1 cm on a side". (Ours models the
    /// full per-station-ALU datapath, not the 16-shared-ALU variant, so
    /// we allow 1.5 cm.)
    #[test]
    fn scaled_hybrid_fits_small_die() {
        let f = figure12(&Tech::cmos_010());
        let side = f.hybrid.width_cm.max(f.hybrid.height_cm);
        assert!(side < 1.5, "0.1 µm hybrid side {side} cm");
    }
}
