//! Ultrascalar I: the H-tree floorplan of Figure 6 and its recurrences.
//!
//! The paper's §3 analysis:
//!
//! ```text
//! X(n) = Θ(L) + Θ(M(n)) + 2·X(n/4),   X(1) = Θ(L)
//! W(n) = X(n/4) + Θ(L + M(n)) + W(n/2),   W(1) = 0
//! ```
//!
//! with solutions `X(n) = Θ(√n·L)` for `M(n) = O(n^(1/2−ε))`,
//! `Θ(√n(L + log n))` at the knife edge, and `Θ(√n·L + M(n))` above
//! it; `W(n) = Θ(X(n))`; area `X(n)²`; gate delay `Θ(log n)`.
//!
//! We evaluate the recurrences exactly over a rectangle-doubling
//! H-tree (alternating horizontal/vertical cuts, so every power of two
//! is supported; powers of four give the paper's square layout), with
//! channel widths computed from the technology's wire pitch and the
//! actual wire counts of the per-register CSPP trees and the fat-tree
//! memory links.

use crate::metrics::{ArchParams, Metrics};
use crate::tech::Tech;

/// Wire tracks crossing an H-tree channel that serve the *register*
/// datapath: for each of `L` registers, `bits + 1` value/ready wires in
/// each direction plus a segment/modified wire, plus the three 1-bit
/// sequencing CSPPs (deallocation, memory serialisation ×2 — "their
/// area is only a small constant factor").
pub(crate) fn register_tracks(l: usize, bits: usize) -> usize {
    l * (2 * (bits + 1) + 1) + 3 * 3
}

/// Wire tracks for `ports` memory ports through a fat-tree channel
/// (address + data + request/grant per port).
pub(crate) fn memory_tracks(ports: usize, bits: usize) -> usize {
    ports * (2 * bits + 2)
}

/// Physical channel width (µm) between H-tree quadrants containing `l`
/// registers of `bits` bits and `ports` memory ports: routed global
/// wires at the repeatered pitch, plus the prefix-node logic strip
/// (each H-tree node holds `L` CSPP switches of `bits + 1` cells — the
/// paper: "each node of our H-tree floorplan would require area
/// comparable to the entire area of one of today's processors" at
/// L = 64, b = 64) and the fat-tree switch strip.
pub(crate) fn channel_um(l: usize, bits: usize, ports: usize, tech: &Tech) -> f64 {
    let tracks = register_tracks(l, bits) + memory_tracks(ports, bits);
    let prefix_strip = 0.5 * (l as f64) * (bits as f64 + 1.0) * tech.cell_side_um;
    let mem_strip = ports as f64 * tech.cell_side_um;
    tracks as f64 * tech.global_pitch_um + prefix_strip + mem_strip
}

/// Exact H-tree evaluation: returns `(width, height, root_to_leaf_wire)`
/// in µm for a tree over `n` leaves of side `leaf_side`.
///
/// At each doubling the two child rectangles sit either side of a
/// channel of width `chan(n_subtree)`; cuts alternate axes so the
/// aspect ratio stays within 2.
pub(crate) fn htree(n: usize, leaf_side: f64, chan: &dyn Fn(usize) -> f64) -> (f64, f64, f64) {
    assert!(
        n > 0 && n.is_power_of_two(),
        "H-tree needs a power-of-two n"
    );
    let mut w = leaf_side;
    let mut h = leaf_side;
    let mut wire = 0.0;
    let mut size = 1usize;
    let mut horizontal = true; // next cut duplicates along x
    while size < n {
        size *= 2;
        let c = chan(size) / 2.0; // channel split across the two cut axes
        if horizontal {
            // Root-to-child wire: from the channel centre to the child
            // rectangle's centre.
            wire += w / 2.0 + c;
            w = 2.0 * w + c;
        } else {
            wire += h / 2.0 + c;
            h = 2.0 * h + c;
        }
        horizontal = !horizontal;
    }
    (w, h, wire)
}

/// Side length (µm) of an `n`-station Ultrascalar I (square for powers
/// of four; max dimension otherwise).
pub fn side_um(p: &ArchParams, tech: &Tech) -> f64 {
    let (w, h, _) = layout(p, tech);
    w.max(h)
}

fn layout(p: &ArchParams, tech: &Tech) -> (f64, f64, f64) {
    let leaf = tech.station_side_um(p.l, p.bits);
    let chan = |subtree: usize| channel_um(p.l, p.bits, p.mem.capacity(subtree), tech);
    htree(p.n.next_power_of_two().max(1), leaf, &chan)
}

/// Critical-path gate levels of the CSPP-tree datapath: two traversals
/// of a `log₂ n`-level tree, a small constant of gate levels per
/// combining node (one bus mux + one OR), plus station decode/readout.
/// `Θ(log n)` — cross-checked against the measured settle depth of the
/// gate-level `CsppTree` in the bench suite.
pub fn gate_delay(n: usize) -> f64 {
    let levels = (n.max(2) as f64).log2().ceil();
    2.0 * levels * 2.0 + 6.0
}

/// Full metric record for one parameter point.
pub fn metrics(p: &ArchParams, tech: &Tech) -> Metrics {
    let (w, h, wire) = layout(p, tech);
    // "Every datapath signal goes up the tree, and then down. Thus the
    // longest datapath signal is 2W(n)."
    Metrics {
        gate_delay: gate_delay(p.n),
        wire_um: 2.0 * wire,
        side_um: w.max(h),
        area_um2: w * h,
    }
}

/// The closed-form side-length bound for the current bandwidth regime,
/// up to constants — used by tests to verify the recursion matches the
/// paper's solution shape.
pub fn side_closed_form_shape(p: &ArchParams) -> f64 {
    let n = p.n as f64;
    let l = p.l as f64;
    match p.mem.regime() {
        ultrascalar_memsys::bandwidth::Regime::BelowSqrt => n.sqrt() * l,
        ultrascalar_memsys::bandwidth::Regime::Sqrt => n.sqrt() * (l + n.log2()),
        ultrascalar_memsys::bandwidth::Regime::AboveSqrt => n.sqrt() * l + p.mem.eval(p.n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_exponent_tail;
    use ultrascalar_memsys::Bandwidth;

    fn params(n: usize, l: usize, mem: Bandwidth) -> ArchParams {
        ArchParams {
            n,
            l,
            bits: 32,
            mem,
        }
    }

    fn sweep(l: usize, mem: Bandwidth, f: impl Fn(&Metrics) -> f64) -> Vec<(f64, f64)> {
        let tech = Tech::cmos_035();
        (2..=12)
            .map(|k| {
                let n = 4usize.pow(k);
                (n as f64, f(&metrics(&params(n, l, mem), &tech)))
            })
            .collect()
    }

    /// Case 1 of the paper: with M(n) = O(n^(1/2−ε)) the side grows as
    /// Θ(√n) in n.
    #[test]
    fn side_grows_as_sqrt_n_for_small_bandwidth() {
        for mem in [Bandwidth::constant(1.0), Bandwidth::sublinear_sqrt(0.25)] {
            let pts = sweep(32, mem, |m| m.side_um);
            let f = fit_exponent_tail(&pts, 4);
            assert!(
                (f.exponent - 0.5).abs() < 0.06,
                "side exponent {f:?} for {mem:?}"
            );
        }
    }

    /// Case 3: with M(n) = Θ(n) the side is dominated by bandwidth and
    /// grows linearly.
    #[test]
    fn side_grows_linearly_for_full_bandwidth() {
        let pts = sweep(32, Bandwidth::full(), |m| m.side_um);
        let f = fit_exponent_tail(&pts, 4);
        assert!((f.exponent - 1.0).abs() < 0.08, "{f:?}");
    }

    /// Wire length tracks the side length (W(n) = Θ(X(n))).
    #[test]
    fn wire_is_theta_of_side() {
        let tech = Tech::cmos_035();
        for k in 1..=8 {
            let n = 4usize.pow(k);
            let m = metrics(&params(n, 32, Bandwidth::constant(1.0)), &tech);
            let ratio = m.wire_um / m.side_um;
            assert!(ratio > 0.4 && ratio < 4.0, "n={n}: wire/side ratio {ratio}");
        }
    }

    /// The side scales linearly in L once the register file dominates
    /// (the channel and the station are both Θ(L)).
    #[test]
    fn side_scales_linearly_in_l() {
        let tech = Tech::cmos_035();
        let pts: Vec<(f64, f64)> = (3..=8)
            .map(|k| {
                let l = 1usize << k;
                (
                    l as f64,
                    metrics(&params(256, l, Bandwidth::constant(1.0)), &tech).side_um,
                )
            })
            .collect();
        let f = fit_exponent_tail(&pts, 4);
        assert!((f.exponent - 1.0).abs() < 0.25, "{f:?}");
    }

    #[test]
    fn gate_delay_is_logarithmic() {
        assert!(gate_delay(4) < gate_delay(64));
        // Doubling n adds a constant, not a factor.
        let d1 = gate_delay(1 << 10);
        let d2 = gate_delay(1 << 11);
        assert!((d2 - d1 - 4.0).abs() < 1e-9);
    }

    /// The exact recursion matches the closed form's shape: their ratio
    /// is bounded over the sweep.
    #[test]
    fn recursion_matches_closed_form_shape() {
        let tech = Tech::cmos_035();
        for mem in [
            Bandwidth::constant(1.0),
            Bandwidth::sqrt(),
            Bandwidth::full(),
        ] {
            let ratios: Vec<f64> = (2..=9)
                .map(|k| {
                    let n = 4usize.pow(k);
                    let p = params(n, 32, mem);
                    metrics(&p, &tech).side_um / side_closed_form_shape(&p)
                })
                .collect();
            let lo = ratios.iter().cloned().fold(f64::MAX, f64::min);
            let hi = ratios.iter().cloned().fold(0.0, f64::max);
            assert!(
                hi / lo < 4.0,
                "closed form diverges from recursion: {ratios:?} for {mem:?}"
            );
        }
    }

    #[test]
    fn power_of_four_layouts_are_square() {
        let tech = Tech::cmos_035();
        let (w, h, _) = layout(&params(64, 32, Bandwidth::constant(1.0)), &tech);
        assert!((w / h - 1.0).abs() < 0.2, "w={w} h={h}");
    }

    #[test]
    fn single_station_is_just_the_station() {
        let tech = Tech::cmos_035();
        let m = metrics(&params(1, 32, Bandwidth::constant(1.0)), &tech);
        assert!((m.side_um - tech.station_side_um(32, 32)).abs() < 1e-9);
        assert_eq!(m.wire_um, 0.0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_htree_rejected() {
        let _ = htree(3, 1.0, &|_| 0.0);
    }
}
