//! Growth-exponent estimation by least-squares on log–log points.
//!
//! The Figure 11 bench sweeps `n`, evaluates each layout's metrics, and
//! fits `metric ≈ c·n^p`; the fitted `p` is compared against the
//! paper's Θ-claims (e.g. wire delay of the low-bandwidth Ultrascalar I
//! grows as `√n`, so `p ≈ 0.5`).

/// Result of a log–log linear fit `log y = p·log x + log c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentFit {
    /// The growth exponent `p` (slope).
    pub exponent: f64,
    /// The coefficient `c` (intercept, de-logged).
    pub coeff: f64,
    /// Coefficient of determination of the fit in log space.
    pub r_squared: f64,
}

/// Fit a power law to `(x, y)` samples.
///
/// # Panics
/// Panics with fewer than two samples or non-positive coordinates.
pub fn fit_exponent(points: &[(f64, f64)]) -> ExponentFit {
    assert!(points.len() >= 2, "need at least two points to fit");
    for &(x, y) in points {
        assert!(x > 0.0 && y > 0.0, "log–log fit needs positive data");
    }
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values must not be all equal");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;

    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    ExponentFit {
        exponent: slope,
        coeff: intercept.exp(),
        r_squared,
    }
}

/// Fit the exponent using only the tail of the sweep (asymptotic
/// behaviour: constants die out at large `n`).
pub fn fit_exponent_tail(points: &[(f64, f64)], tail: usize) -> ExponentFit {
    let start = points.len().saturating_sub(tail.max(2));
    fit_exponent(&points[start..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| {
                let x = (1u64 << i) as f64;
                (x, 3.0 * x.powf(0.5))
            })
            .collect();
        let f = fit_exponent(&pts);
        assert!((f.exponent - 0.5).abs() < 1e-9, "{f:?}");
        assert!((f.coeff - 3.0).abs() < 1e-6);
        assert!(f.r_squared > 0.999999);
    }

    #[test]
    fn linear_and_quadratic() {
        let lin: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 2.0 * i as f64)).collect();
        assert!((fit_exponent(&lin).exponent - 1.0).abs() < 1e-9);
        let quad: Vec<(f64, f64)> = (1..=8)
            .map(|i| (i as f64, 0.5 * (i as f64).powi(2)))
            .collect();
        assert!((fit_exponent(&quad).exponent - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tail_fit_ignores_small_n_constants() {
        // y = x + 1000: looks flat early, linear late.
        let pts: Vec<(f64, f64)> = (0..23)
            .map(|i| {
                let x = (1u64 << i) as f64;
                (x, x + 1000.0)
            })
            .collect();
        let full = fit_exponent(&pts);
        let tail = fit_exponent_tail(&pts, 4);
        assert!(tail.exponent > full.exponent);
        assert!((tail.exponent - 1.0).abs() < 0.05, "{tail:?}");
    }

    #[test]
    fn logarithmic_data_fits_near_zero_exponent() {
        let pts: Vec<(f64, f64)> = (4..20)
            .map(|i| {
                let x = (1u64 << i) as f64;
                (x, x.log2())
            })
            .collect();
        let f = fit_exponent(&pts);
        assert!(f.exponent < 0.15, "{f:?}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_point_rejected() {
        let _ = fit_exponent(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn nonpositive_rejected() {
        let _ = fit_exponent(&[(1.0, 0.0), (2.0, 1.0)]);
    }
}
