//! Ultrascalar II: the diagonal grid floorplan of Figure 7 and the
//! mesh-of-trees variant of Figure 8.
//!
//! §5 of the paper: "the entire Ultrascalar II can be layed out in a
//! box with side-length O(n + L)"; the log-gate-delay tree-of-meshes
//! version costs an extra `log(n + L)` factor on the side; the memory
//! switches fit in the triangle above the diagonal "since M(n) = O(n)
//! in all cases".

use crate::metrics::{ArchParams, Metrics};
use crate::tech::Tech;

/// Register-number field width.
fn regnum_bits(l: usize) -> usize {
    (usize::BITS - (l.max(2) - 1).leading_zeros()) as usize
}

/// Pitch (µm) of one register-binding row or argument column in the
/// grid: register number, value and ready wires at the *local* pitch
/// (short over-cell wires), plus one row of comparator/mux cells.
pub(crate) fn row_pitch_um(l: usize, bits: usize, tech: &Tech) -> f64 {
    (regnum_bits(l) + bits + 2) as f64 * tech.local_pitch_um + tech.cell_side_um
}

/// Side length (µm) of the linear-gate-delay grid (Figure 7):
/// the comparator/mux grid has `2n + L` columns (two argument columns
/// per station plus the outgoing registers) and `n + L` rows (one
/// result binding per station plus the initial registers); the station
/// logic itself is packed in a 2-D block off the diagonal (the paper's
/// §7: "we placed the 32 ALUs of each cluster in 4 columns of 8 ALUs
/// each, arrayed off the diagonal"). `Θ(n + L)` overall.
pub fn side_linear_um(p: &ArchParams, tech: &Tech) -> f64 {
    let pitch = row_pitch_um(p.l, p.bits, tech);
    let grid = (2 * p.n + p.l).max(p.n + p.l) as f64 * pitch;
    let station_block = ((p.n as f64) * tech.station_side_um(p.l, p.bits).powi(2)).sqrt();
    grid + station_block
}

/// Side length of the mesh-of-trees version (Figure 8): the fan-out and
/// reduction trees cost a `log₂(n + L)` area factor on the side
/// ("the side length increases to O((n + L)·log(n + L))").
pub fn side_log_um(p: &ArchParams, tech: &Tech) -> f64 {
    side_linear_um(p, tech) * ((p.n + p.l).max(2) as f64).log2()
}

/// Gate levels of the linear grid: the last column's serial search
/// through `n + L − 1` bindings ("the clock period grows as
/// O(n + L)") after a comparator.
pub fn gate_delay_linear(p: &ArchParams) -> f64 {
    2.0 * (p.n + p.l) as f64 + (p.bits.max(2) as f64).log2() + 2.0
}

/// Gate levels of the mesh-of-trees grid: request fan-out
/// (`log(n + L)`), comparison (`log log L` – a couple of levels on a
/// `log L`-bit field), and the reduction tree back up (`log(n + L)`).
pub fn gate_delay_log(p: &ArchParams) -> f64 {
    let nl = ((p.n + p.l).max(2)) as f64;
    2.0 * nl.log2() * 2.0 + (regnum_bits(p.l).max(2) as f64).log2() + 4.0
}

/// Metrics of the linear-gate-delay Ultrascalar II.
pub fn metrics_linear(p: &ArchParams, tech: &Tech) -> Metrics {
    let side = side_linear_um(p, tech);
    // The worst signal crosses the full grid: down one argument column
    // and across one binding row.
    Metrics::from_side(gate_delay_linear(p), 2.0 * side, side)
}

/// Metrics of the log-gate-delay (mesh-of-trees) Ultrascalar II.
pub fn metrics_log(p: &ArchParams, tech: &Tech) -> Metrics {
    let side = side_log_um(p, tech);
    Metrics::from_side(gate_delay_log(p), 2.0 * side, side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_exponent_tail;
    use ultrascalar_memsys::Bandwidth;

    fn params(n: usize, l: usize) -> ArchParams {
        ArchParams {
            n,
            l,
            bits: 32,
            mem: Bandwidth::full(),
        }
    }

    #[test]
    fn linear_side_grows_linearly_in_n() {
        let tech = Tech::cmos_035();
        let pts: Vec<(f64, f64)> = (4..=16)
            .map(|k| {
                let n = 1usize << k;
                (n as f64, side_linear_um(&params(n, 32), &tech))
            })
            .collect();
        let f = fit_exponent_tail(&pts, 4);
        assert!((f.exponent - 1.0).abs() < 0.05, "{f:?}");
    }

    #[test]
    fn log_side_costs_a_log_factor() {
        let tech = Tech::cmos_035();
        let p = params(1024, 32);
        let ratio = side_log_um(&p, &tech) / side_linear_um(&p, &tech);
        assert!((ratio - (1024f64 + 32.0).log2()).abs() < 1e-9);
    }

    #[test]
    fn gate_delay_linear_vs_log() {
        // Figure 11 column 2 vs 3: Θ(n + L) vs Θ(log(n + L)).
        let p = params(256, 32);
        assert!(gate_delay_linear(&p) > 500.0);
        assert!(gate_delay_log(&p) < 50.0);
        // Linear delay doubles with n; log delay adds a constant.
        let d_lin = gate_delay_linear(&params(512, 32)) / gate_delay_linear(&params(256, 32));
        assert!(d_lin > 1.7);
        let d_log = gate_delay_log(&params(512, 32)) - gate_delay_log(&params(256, 32));
        assert!(d_log < 5.0);
    }

    #[test]
    fn side_additive_in_l() {
        // Θ(n + L): for L ≫ n the side is linear in L (the initial
        // register rows dominate the grid).
        let tech = Tech::cmos_035();
        let pts: Vec<(f64, f64)> = (8..=12)
            .map(|k| {
                let l = 1usize << k;
                (l as f64, side_linear_um(&params(16, l), &tech))
            })
            .collect();
        let f = fit_exponent_tail(&pts, 3);
        // The station block adds a √L term, so the slope sits between
        // strongly sublinear and linear.
        assert!(f.exponent > 0.7 && f.exponent < 1.1, "{f:?}");
    }

    #[test]
    fn area_is_quadratic_in_n() {
        let tech = Tech::cmos_035();
        let pts: Vec<(f64, f64)> = (4..=16)
            .map(|k| {
                let n = 1usize << k;
                (n as f64, metrics_linear(&params(n, 32), &tech).area_um2)
            })
            .collect();
        let f = fit_exponent_tail(&pts, 4);
        assert!((f.exponent - 2.0).abs() < 0.1, "{f:?}");
    }

    /// The crossover the paper highlights: "for smaller processors
    /// (n < O(L²)) the Ultrascalar II dominates the Ultrascalar I …
    /// for larger processors the Ultrascalar I dominates."
    #[test]
    fn usii_beats_usi_below_l_squared_and_loses_above() {
        let tech = Tech::cmos_035();
        let l = 32;
        // Small machine: n ≪ L².
        let small = params(16, l);
        let usi_small = crate::usi::metrics(
            &ArchParams {
                mem: Bandwidth::constant(1.0),
                ..small
            },
            &tech,
        );
        let usii_small = metrics_linear(&small, &tech);
        assert!(
            usii_small.side_um < usi_small.side_um,
            "US-II should win at n=16, L=32: {} vs {}",
            usii_small.side_um,
            usi_small.side_um
        );
        // Large machine: n ≫ L².
        let big = params(1 << 14, l);
        let usi_big = crate::usi::metrics(
            &ArchParams {
                mem: Bandwidth::constant(1.0),
                ..big
            },
            &tech,
        );
        let usii_big = metrics_linear(&big, &tech);
        assert!(
            usi_big.side_um < usii_big.side_um,
            "US-I should win at n=2^14, L=32: {} vs {}",
            usi_big.side_um,
            usii_big.side_um
        );
    }
}

/// The §5 mixed strategy: "replace the part of each tree near the root
/// with a linear-time prefix circuit. This works well in practice
/// because at some point the wire-lengths near the root of the tree
/// become so long that the wire-delay is comparable to a gate delay …
/// [its] asymptotic results are exactly the same as for the linear-time
/// circuit (the wire delays, gate delays, and side length are all n)
/// with greatly improved constant factors."
///
/// `tree_levels` levels of fan-in happen in log-depth trees hidden in
/// the existing cell area ("we found that there was enough space in our
/// Ultrascalar II datapath to implement about three levels of the tree
/// without impacting the total layout area"); the remaining
/// `(n + L) / 2^levels` rows are searched by the linear chain.
pub fn gate_delay_mixed(p: &ArchParams, tree_levels: u32) -> f64 {
    let rows = (p.n + p.l).max(1) as f64;
    let chain = (rows / 2f64.powi(tree_levels as i32)).max(1.0);
    2.0 * chain + 2.0 * tree_levels as f64 + (p.bits.max(2) as f64).log2() + 2.0
}

/// Metrics for the mixed strategy: the linear layout's side (no
/// mesh-of-trees area blow-up) with the reduced gate depth.
pub fn metrics_mixed(p: &ArchParams, tech: &Tech, tree_levels: u32) -> Metrics {
    let side = side_linear_um(p, tech);
    Metrics::from_side(gate_delay_mixed(p, tree_levels), 2.0 * side, side)
}

#[cfg(test)]
mod mixed_tests {
    use super::*;
    use ultrascalar_memsys::Bandwidth;

    fn params(n: usize, l: usize) -> ArchParams {
        ArchParams {
            n,
            l,
            bits: 32,
            mem: Bandwidth::full(),
        }
    }

    #[test]
    fn mixed_keeps_the_linear_footprint() {
        let tech = Tech::cmos_035();
        let p = params(256, 32);
        assert_eq!(
            metrics_mixed(&p, &tech, 3).side_um,
            metrics_linear(&p, &tech).side_um
        );
    }

    #[test]
    fn three_levels_cut_the_gate_delay_by_nearly_8x() {
        let p = params(1024, 32);
        let lin = gate_delay_linear(&p);
        let mixed = gate_delay_mixed(&p, 3);
        let ratio = lin / mixed;
        assert!(ratio > 5.0 && ratio < 9.0, "ratio {ratio}");
    }

    #[test]
    fn zero_levels_is_the_linear_circuit() {
        let p = params(128, 32);
        // Same asymptote, same leading 2·(n+L) term.
        let d0 = gate_delay_mixed(&p, 0);
        let dl = gate_delay_linear(&p);
        assert!((d0 - dl).abs() <= 2.0, "{d0} vs {dl}");
    }

    #[test]
    fn mixed_is_still_asymptotically_linear() {
        let d1 = gate_delay_mixed(&params(1 << 12, 32), 3);
        let d2 = gate_delay_mixed(&params(1 << 13, 32), 3);
        assert!(d2 / d1 > 1.8, "{d1} → {d2}");
    }
}

/// The §4 wrap-around variant: "The Ultrascalar II can easily be
/// modified to handle wrap-around … Furthermore, it appears to cost
/// nearly a factor of two in area." Functionally it schedules like the
/// Ultrascalar I (station-granular refill); physically it pays ~2× the
/// grid area (each binding row/column must be duplicated so the window
/// origin can rotate).
pub fn metrics_wraparound(p: &ArchParams, tech: &Tech) -> Metrics {
    let base = metrics_linear(p, tech);
    let side = base.side_um * std::f64::consts::SQRT_2;
    Metrics {
        gate_delay: base.gate_delay,
        wire_um: base.wire_um * std::f64::consts::SQRT_2,
        side_um: side,
        area_um2: 2.0 * base.area_um2,
    }
}

#[cfg(test)]
mod wraparound_tests {
    use super::*;
    use ultrascalar_memsys::Bandwidth;

    #[test]
    fn costs_a_factor_of_two_in_area() {
        let tech = Tech::cmos_035();
        let p = ArchParams {
            n: 64,
            l: 32,
            bits: 32,
            mem: Bandwidth::full(),
        };
        let base = metrics_linear(&p, &tech);
        let wrap = metrics_wraparound(&p, &tech);
        assert!((wrap.area_um2 / base.area_um2 - 2.0).abs() < 1e-9);
        assert_eq!(wrap.gate_delay, base.gate_delay);
    }
}
