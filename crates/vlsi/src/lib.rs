//! VLSI complexity models: the paper's floorplans, recurrences and
//! delay/area bounds, evaluated numerically.
//!
//! The paper's evaluation is *geometric*: every claim in Figure 11 is a
//! statement about the side length, wire length and gate depth of a
//! recursively defined layout. This crate instantiates those layouts
//! from technology constants and evaluates the recurrences exactly
//! (no closed forms are assumed — the closed forms are *checked
//! against* the recursions in the tests and benches):
//!
//! * [`tech`] — technology parameters (wire pitch, cell sizes, gate
//!   and repeatered-wire delay), with a calibrated 0.35 µm instance
//!   matching the paper's Magic layouts;
//! * [`usi`] — the Ultrascalar I H-tree (Figure 6): recurrences
//!   `X(n) = 2X(n/4) + Θ(L + M(n))`, `W(n) = X(n/4) + Θ(L + M(n)) +
//!   W(n/2)`;
//! * [`usii`] — the Ultrascalar II diagonal grid (Figure 7) and its
//!   log-depth mesh-of-trees variant (Figure 8): side `Θ(n + L)`
//!   resp. `Θ((n+L)·log(n+L))`;
//! * [`hybrid`] — the two-level layout (Figure 10): US-II clusters of
//!   `C` stations inside a US-I H-tree, `U(n) = 2U(n/4) + Θ(L + M(n))`
//!   with base case the cluster side, plus the §6 optimal-cluster-size
//!   search (the paper's `C* = Θ(L)`);
//! * [`threed`] — the §7 three-dimensional packaging bounds;
//! * [`metrics`] — the combined gate/wire/total-delay and area record
//!   (rows of Figure 11);
//! * [`fit`] — log–log regression for measuring growth exponents, used
//!   by the Figure 11 bench to compare measured slopes against the
//!   paper's Θ-claims;
//! * [`empirical`] — the Figure 12 reproduction: a 64-wide
//!   Ultrascalar I vs a 128-wide 4-cluster hybrid in 0.35 µm, with the
//!   paper's headline ≈11.5× density ratio.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod delay;
pub mod empirical;
pub mod fit;
pub mod floorplan;
pub mod hybrid;
pub mod metrics;
pub mod tech;
pub mod threed;
pub mod usi;
pub mod usii;

pub use fit::fit_exponent;
pub use metrics::{ArchParams, Metrics};
pub use tech::Tech;
