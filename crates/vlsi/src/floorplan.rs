//! Explicit floorplan placement: the recursive layouts of Figures 6
//! and 10 as concrete, overlap-checked rectangle placements.
//!
//! The analytic modules ([`crate::usi`], [`crate::hybrid`]) evaluate
//! the side-length recurrences numerically; this module *constructs*
//! the layout — every station, channel strip and cluster gets a placed
//! rectangle — so tests can verify that the geometry is realisable
//! (components are disjoint, the bounding box matches the recurrence)
//! and the experiment binaries can render the floorplans the paper
//! draws.

use crate::metrics::ArchParams;
use crate::tech::Tech;
use crate::{usi, usii};

/// An axis-aligned rectangle (µm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Bottom edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl Rect {
    /// Right edge.
    pub fn x2(&self) -> f64 {
        self.x + self.w
    }

    /// Top edge.
    pub fn y2(&self) -> f64 {
        self.y + self.h
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Do two rectangles overlap with positive area (touching edges do
    /// not count)?
    pub fn overlaps(&self, o: &Rect) -> bool {
        const EPS: f64 = 1e-6;
        self.x + EPS < o.x2()
            && o.x + EPS < self.x2()
            && self.y + EPS < o.y2()
            && o.y + EPS < self.y2()
    }
}

/// What a placed rectangle is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// An execution station (leaf), by index.
    Station(usize),
    /// An Ultrascalar II cluster (hybrid leaf), by index.
    Cluster(usize),
    /// A routing channel with its prefix/fat-tree nodes, by H-tree
    /// combine level (1 = innermost pairing).
    Channel(usize),
}

/// A complete placement.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Placed components.
    pub rects: Vec<(Component, Rect)>,
}

impl Placement {
    /// The bounding box of everything placed.
    pub fn bounding(&self) -> Rect {
        let mut x1 = f64::MAX;
        let mut y1 = f64::MAX;
        let mut x2 = f64::MIN;
        let mut y2 = f64::MIN;
        for (_, r) in &self.rects {
            x1 = x1.min(r.x);
            y1 = y1.min(r.y);
            x2 = x2.max(r.x2());
            y2 = y2.max(r.y2());
        }
        Rect {
            x: x1,
            y: y1,
            w: x2 - x1,
            h: y2 - y1,
        }
    }

    /// Indices of pairs of *leaf* components (stations/clusters) that
    /// overlap — must be empty for a legal floorplan. Channels are
    /// allowed to abut everything (they are the space between leaves)
    /// but leaves must never overlap each other or a channel.
    pub fn violations(&self) -> Vec<(usize, usize)> {
        let mut bad = Vec::new();
        for i in 0..self.rects.len() {
            for j in i + 1..self.rects.len() {
                let (ci, ri) = &self.rects[i];
                let (cj, rj) = &self.rects[j];
                let both_channels =
                    matches!(ci, Component::Channel(_)) && matches!(cj, Component::Channel(_));
                if !both_channels && ri.overlaps(rj) {
                    bad.push((i, j));
                }
            }
        }
        bad
    }

    /// Leaf (station/cluster) count.
    pub fn leaves(&self) -> usize {
        self.rects
            .iter()
            .filter(|(c, _)| matches!(c, Component::Station(_) | Component::Cluster(_)))
            .count()
    }

    /// Fraction of the bounding box covered by leaf components
    /// (the rest is interconnect — the paper's core area story).
    pub fn leaf_utilisation(&self) -> f64 {
        let leaf_area: f64 = self
            .rects
            .iter()
            .filter(|(c, _)| matches!(c, Component::Station(_) | Component::Cluster(_)))
            .map(|(_, r)| r.area())
            .sum();
        leaf_area / self.bounding().area()
    }

    /// Coarse ASCII rendering (`cols` characters wide): stations `S`,
    /// clusters `C`, channels `#`, empty space `.`.
    pub fn ascii(&self, cols: usize) -> String {
        let bb = self.bounding();
        let cols = cols.max(8);
        let scale = bb.w / cols as f64;
        let rows = ((bb.h / scale).ceil() as usize).max(1);
        let mut grid = vec![vec!['.'; cols]; rows];
        // Channels first, leaves on top.
        let mut order: Vec<&(Component, Rect)> = self.rects.iter().collect();
        order.sort_by_key(|(c, _)| match c {
            Component::Channel(_) => 0,
            _ => 1,
        });
        for (c, r) in order {
            let ch = match c {
                Component::Station(_) => 'S',
                Component::Cluster(_) => 'C',
                Component::Channel(_) => '#',
            };
            let cx1 = (((r.x - bb.x) / scale) as usize).min(cols - 1);
            let cx2 = (((r.x2() - bb.x) / scale).ceil() as usize).clamp(cx1 + 1, cols);
            let cy1 = (((r.y - bb.y) / scale) as usize).min(rows - 1);
            let cy2 = (((r.y2() - bb.y) / scale).ceil() as usize).clamp(cy1 + 1, rows);
            for row in grid.iter_mut().take(cy2).skip(cy1) {
                for cell in row.iter_mut().take(cx2).skip(cx1) {
                    *cell = ch;
                }
            }
        }
        let mut out = String::with_capacity(rows * (cols + 1));
        for row in grid.iter().rev() {
            out.extend(row.iter());
            out.push('\n');
        }
        out
    }
}

/// In-progress bottom-up H-tree construction. The doubling loop only
/// ever *appends* to the rectangle list — the existing half is left in
/// place and the copy is the one that gets shifted — so the list at
/// `size = m` is an exact prefix of the list at every larger size built
/// with the same leaf side and channel widths. [`LayoutCache`] exploits
/// exactly that: it keeps the largest build per parameter family and
/// answers smaller sizes by slicing, larger ones by resuming the loop.
struct HtreeBuild {
    rects: Vec<(Component, Rect)>,
    /// Bounding width/height of the placed prefix.
    w: f64,
    h: f64,
    /// Leaves placed so far (always a power of two).
    size: usize,
    /// Next cut direction.
    horizontal: bool,
    /// Rect-list length after each doubling: `prefix_lens[k]` is the
    /// length at `size = 2^k`.
    prefix_lens: Vec<usize>,
    /// Bit patterns of `chan(2^k)` for `k = 1..`, in level order — the
    /// part of the parameter family that depends on the bandwidth
    /// regime.
    chans: Vec<u64>,
}

impl HtreeBuild {
    fn seed(leaf_side: f64, mk_leaf: &dyn Fn(usize) -> Component) -> Self {
        HtreeBuild {
            rects: vec![(
                mk_leaf(0),
                Rect {
                    x: 0.0,
                    y: 0.0,
                    w: leaf_side,
                    h: leaf_side,
                },
            )],
            w: leaf_side,
            h: leaf_side,
            size: 1,
            horizontal: true,
            prefix_lens: vec![1],
            chans: Vec::new(),
        }
    }

    /// Continue doubling until `n` leaves are placed. Work bottom-up:
    /// at each doubling, duplicate the current placement and separate
    /// the copies by the channel strip (the level's `chan` width, split
    /// evenly across the two cut axes, as in [`usi::htree`]).
    fn extend_to(
        &mut self,
        n: usize,
        chan: &dyn Fn(usize) -> f64,
        mk_leaf: &dyn Fn(usize) -> Component,
    ) {
        while self.size < n {
            let leaf_count = self.size;
            self.size *= 2;
            let full = chan(self.size);
            self.chans.push(full.to_bits());
            let c = full / 2.0;
            let (w, h, horizontal) = (self.w, self.h, self.horizontal);
            let mut copy: Vec<(Component, Rect)> = self
                .rects
                .iter()
                .map(|(comp, r)| {
                    let comp = match comp {
                        Component::Station(i) => mk_leaf(i + leaf_count),
                        Component::Cluster(i) => mk_leaf(i + leaf_count),
                        Component::Channel(l) => Component::Channel(*l),
                    };
                    let r = if horizontal {
                        Rect {
                            x: r.x + w + c,
                            ..*r
                        }
                    } else {
                        Rect {
                            y: r.y + h + c,
                            ..*r
                        }
                    };
                    (comp, r)
                })
                .collect();
            // The channel strip between the halves.
            let level = self.size.trailing_zeros() as usize;
            let strip = if horizontal {
                Rect {
                    x: w,
                    y: 0.0,
                    w: c,
                    h,
                }
            } else {
                Rect {
                    x: 0.0,
                    y: h,
                    w,
                    h: c,
                }
            };
            self.rects.append(&mut copy);
            self.rects.push((Component::Channel(level), strip));
            if horizontal {
                self.w = 2.0 * w + c;
            } else {
                self.h = 2.0 * h + c;
            }
            self.horizontal = !horizontal;
            self.prefix_lens.push(self.rects.len());
        }
    }

    /// The placement at `n` leaves (`n <= self.size`): the exact prefix
    /// of the rect list as it stood after the `log2(n)`-th doubling.
    fn placement_at(&self, n: usize) -> Placement {
        let len = self.prefix_lens[n.trailing_zeros() as usize];
        Placement {
            rects: self.rects[..len].to_vec(),
        }
    }
}

/// Recursively place an H-tree of `n` leaves of side `leaf_side`,
/// returning the placement (leaves labelled by in-order index via
/// `mk_leaf`). Channels between siblings carry the level's `chan`
/// width, split evenly across the two cut axes, as in [`usi::htree`].
fn place_htree(
    n: usize,
    leaf_side: f64,
    chan: &dyn Fn(usize) -> f64,
    mk_leaf: &dyn Fn(usize) -> Component,
) -> Placement {
    assert!(
        n > 0 && n.is_power_of_two(),
        "H-tree needs a power-of-two n"
    );
    let mut build = HtreeBuild::seed(leaf_side, mk_leaf);
    build.extend_to(n, chan, mk_leaf);
    Placement { rects: build.rects }
}

/// Place an `n`-station Ultrascalar I (Figure 6).
pub fn usi_floorplan(p: &ArchParams, tech: &Tech) -> Placement {
    let leaf = tech.station_side_um(p.l, p.bits);
    let chan = |subtree: usize| usi::channel_um(p.l, p.bits, p.mem.capacity(subtree), tech);
    place_htree(
        p.n.next_power_of_two().max(1),
        leaf,
        &chan,
        &Component::Station,
    )
}

/// Place a hybrid (Figure 10): clusters of `c` stations as H-tree
/// leaves.
///
/// # Panics
/// Panics unless `c` divides `n` and `n/c` is a power of two.
pub fn hybrid_floorplan(p: &ArchParams, c: usize, tech: &Tech) -> Placement {
    assert!(
        c >= 1 && p.n.is_multiple_of(c),
        "cluster size must divide n"
    );
    let k = p.n / c;
    assert!(k.is_power_of_two(), "cluster count must be a power of two");
    let cluster = ArchParams { n: c, ..*p };
    let leaf = usii::side_linear_um(&cluster, tech);
    let chan = |clusters: usize| usi::channel_um(p.l, p.bits, p.mem.capacity(clusters * c), tech);
    place_htree(k, leaf, &chan, &Component::Cluster)
}

/// One memoised parameter family: all placements sharing a leaf kind,
/// leaf side and per-level channel widths are prefixes of the largest
/// one built, so only that largest build is stored.
struct CacheEntry {
    kind: std::mem::Discriminant<Component>,
    /// Bit pattern of the leaf side (exact match, not tolerance).
    leaf_side: u64,
    build: HtreeBuild,
}

/// Memoised floorplan placement across sweep points and bandwidth
/// regimes.
///
/// The H-tree builder is append-only across doublings, so a placement
/// at `n` leaves is an exact prefix of the placement at any larger
/// power of two with the same leaf side and channel widths. The cache
/// keeps the largest build per parameter family (keyed on the leaf
/// component kind, the leaf side's bit pattern and the bit patterns of
/// each level's channel width — the part a bandwidth regime controls)
/// and answers a request by slicing that prefix, resuming the doubling
/// loop only for levels never built before. Because the resumed loop
/// replays exactly the float operations the from-scratch construction
/// would perform, every returned placement is **byte-identical** to
/// the corresponding [`usi_floorplan`] / [`hybrid_floorplan`] result —
/// the empirical-layout sweeps rely on that to scale past `n = 1024`
/// without changing a single output rectangle.
#[derive(Default)]
pub struct LayoutCache {
    entries: Vec<CacheEntry>,
    rects_built: usize,
    rects_reused: usize,
}

impl LayoutCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct parameter families held.
    pub fn families(&self) -> usize {
        self.entries.len()
    }

    /// Rectangles constructed from scratch over the cache's lifetime.
    pub fn rects_built(&self) -> usize {
        self.rects_built
    }

    /// Rectangles served from a memoised prefix instead of being
    /// re-derived.
    pub fn rects_reused(&self) -> usize {
        self.rects_reused
    }

    fn place(
        &mut self,
        n: usize,
        leaf_side: f64,
        chan: &dyn Fn(usize) -> f64,
        mk_leaf: &dyn Fn(usize) -> Component,
    ) -> Placement {
        assert!(
            n > 0 && n.is_power_of_two(),
            "H-tree needs a power-of-two n"
        );
        let kind = std::mem::discriminant(&mk_leaf(0));
        let side_bits = leaf_side.to_bits();
        let levels = n.trailing_zeros() as usize;
        // A family matches when every *shared* level's channel width
        // has the same bit pattern; levels beyond the request are not
        // consulted (they cannot affect the sliced prefix).
        let found = self.entries.iter().position(|e| {
            e.kind == kind
                && e.leaf_side == side_bits
                && e.build
                    .chans
                    .iter()
                    .take(levels)
                    .enumerate()
                    .all(|(k, &bits)| bits == chan(1usize << (k + 1)).to_bits())
        });
        let (i, created) = match found {
            Some(i) => (i, false),
            None => {
                self.entries.push(CacheEntry {
                    kind,
                    leaf_side: side_bits,
                    build: HtreeBuild::seed(leaf_side, mk_leaf),
                });
                (self.entries.len() - 1, true)
            }
        };
        let entry = &mut self.entries[i];
        let before = if created { 0 } else { entry.build.rects.len() };
        entry.build.extend_to(n, chan, mk_leaf);
        let placement = entry.build.placement_at(n);
        self.rects_built += entry.build.rects.len() - before;
        self.rects_reused += placement.rects.len().min(before);
        placement
    }

    /// Memoised [`usi_floorplan`] — byte-identical output.
    pub fn usi_floorplan(&mut self, p: &ArchParams, tech: &Tech) -> Placement {
        let leaf = tech.station_side_um(p.l, p.bits);
        let chan = |subtree: usize| usi::channel_um(p.l, p.bits, p.mem.capacity(subtree), tech);
        self.place(
            p.n.next_power_of_two().max(1),
            leaf,
            &chan,
            &Component::Station,
        )
    }

    /// Memoised [`hybrid_floorplan`] — byte-identical output.
    ///
    /// # Panics
    /// Panics unless `c` divides `n` and `n/c` is a power of two.
    pub fn hybrid_floorplan(&mut self, p: &ArchParams, c: usize, tech: &Tech) -> Placement {
        assert!(
            c >= 1 && p.n.is_multiple_of(c),
            "cluster size must divide n"
        );
        let k = p.n / c;
        assert!(k.is_power_of_two(), "cluster count must be a power of two");
        let cluster = ArchParams { n: c, ..*p };
        let leaf = usii::side_linear_um(&cluster, tech);
        let chan =
            |clusters: usize| usi::channel_um(p.l, p.bits, p.mem.capacity(clusters * c), tech);
        self.place(k, leaf, &chan, &Component::Cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrascalar_memsys::Bandwidth;

    fn params(n: usize) -> ArchParams {
        ArchParams {
            n,
            l: 32,
            bits: 32,
            mem: Bandwidth::constant(1.0),
        }
    }

    #[test]
    fn usi_floorplan_has_all_stations_disjoint() {
        for n in [1usize, 4, 16, 64] {
            let f = usi_floorplan(&params(n), &Tech::cmos_035());
            assert_eq!(f.leaves(), n, "n={n}");
            assert!(f.violations().is_empty(), "n={n}: {:?}", f.violations());
        }
    }

    #[test]
    fn bounding_box_matches_recurrence() {
        let tech = Tech::cmos_035();
        for n in [4usize, 16, 64, 256] {
            let p = params(n);
            let f = usi_floorplan(&p, &tech);
            let bb = f.bounding();
            let side = usi::side_um(&p, &tech);
            assert!(
                (bb.w.max(bb.h) - side).abs() / side < 1e-9,
                "n={n}: bb {} vs recurrence {}",
                bb.w.max(bb.h),
                side
            );
        }
    }

    #[test]
    fn hybrid_floorplan_places_clusters() {
        let tech = Tech::cmos_035();
        let p = params(32);
        let f = hybrid_floorplan(&p, 8, &tech);
        assert_eq!(f.leaves(), 4);
        assert!(f.violations().is_empty());
        let bb = f.bounding();
        let side = crate::hybrid::side_um(&p, 8, &tech);
        assert!((bb.w.max(bb.h) - side).abs() / side < 1e-9);
    }

    #[test]
    fn interconnect_dominates_usi_at_scale() {
        // The paper's point in one number: at n = 64, L = 32 the
        // stations occupy a small fraction of the Ultrascalar I die;
        // the channels eat the rest.
        let f = usi_floorplan(&params(64), &Tech::cmos_035());
        let util = f.leaf_utilisation();
        assert!(util < 0.10, "station utilisation {util:.3}");
        // The hybrid packs far better.
        let fh = hybrid_floorplan(&params(128), 32, &Tech::cmos_035());
        assert!(fh.leaf_utilisation() > 4.0 * util);
    }

    #[test]
    fn ascii_renders_stations_and_channels() {
        let f = usi_floorplan(&params(16), &Tech::cmos_035());
        let art = f.ascii(48);
        assert!(art.contains('S'));
        assert!(art.contains('#'));
        // 16 disjoint station blobs exist; crude check: enough S cells.
        let s_count = art.chars().filter(|&c| c == 'S').count();
        assert!(s_count >= 16, "{s_count}");
    }

    #[test]
    fn channel_levels_recorded() {
        let f = usi_floorplan(&params(16), &Tech::cmos_035());
        let mut levels: Vec<usize> = f
            .rects
            .iter()
            .filter_map(|(c, _)| match c {
                Component::Channel(l) => Some(*l),
                _ => None,
            })
            .collect();
        levels.sort_unstable();
        levels.dedup();
        assert_eq!(levels, vec![1, 2, 3, 4]); // sizes 2, 4, 8, 16
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_htree_size_panics() {
        let _ = place_htree(3, 1.0, &|_| 0.0, &Component::Station);
    }

    /// Bit-pattern comparison: `PartialEq` on `f64` would already fail
    /// on any drift, but the contract is *byte* identity, so compare
    /// the raw representations.
    fn assert_rects_bitwise_equal(a: &Placement, b: &Placement, what: &str) {
        assert_eq!(a.rects.len(), b.rects.len(), "{what}: rect count");
        for (i, ((ca, ra), (cb, rb))) in a.rects.iter().zip(&b.rects).enumerate() {
            assert_eq!(ca, cb, "{what}: component {i}");
            for (va, vb) in [(ra.x, rb.x), (ra.y, rb.y), (ra.w, rb.w), (ra.h, rb.h)] {
                assert_eq!(va.to_bits(), vb.to_bits(), "{what}: rect {i}");
            }
        }
    }

    #[test]
    fn cached_usi_floorplan_byte_identical_all_orders() {
        let tech = Tech::cmos_035();
        let mut cache = LayoutCache::new();
        // Ascending builds extend the memoised prefix; the repeated
        // descending sizes are pure slices. Every answer must match
        // the from-scratch construction bit for bit.
        for n in [1usize, 4, 16, 64, 256, 64, 16, 4, 1, 128] {
            let fresh = usi_floorplan(&params(n), &tech);
            let cached = cache.usi_floorplan(&params(n), &tech);
            assert_rects_bitwise_equal(&cached, &fresh, &format!("usi n={n}"));
        }
        assert_eq!(cache.families(), 1, "one bandwidth regime, one family");
        assert!(cache.rects_reused() > cache.rects_built());
    }

    #[test]
    fn cached_hybrid_floorplan_byte_identical() {
        let tech = Tech::cmos_035();
        let mut cache = LayoutCache::new();
        for n in [32usize, 128, 512, 128, 32] {
            let fresh = hybrid_floorplan(&params(n), 8, &tech);
            let cached = cache.hybrid_floorplan(&params(n), 8, &tech);
            assert_rects_bitwise_equal(&cached, &fresh, &format!("hybrid n={n}"));
        }
        assert_eq!(cache.families(), 1);
    }

    #[test]
    fn cache_separates_bandwidth_regimes_and_leaf_kinds() {
        let tech = Tech::cmos_035();
        let mut cache = LayoutCache::new();
        let constant = params(64);
        let sqrt = ArchParams {
            mem: Bandwidth::sqrt(),
            ..constant
        };
        // Interleave two regimes and both floorplan kinds: each keeps
        // its own family and each stays byte-identical to the
        // from-scratch run.
        for _ in 0..2 {
            for p in [&constant, &sqrt] {
                assert_rects_bitwise_equal(
                    &cache.usi_floorplan(p, &tech),
                    &usi_floorplan(p, &tech),
                    "usi regime",
                );
                assert_rects_bitwise_equal(
                    &cache.hybrid_floorplan(p, 16, &tech),
                    &hybrid_floorplan(p, 16, &tech),
                    "hybrid regime",
                );
            }
        }
        // usi × {constant, sqrt} and hybrid × {constant, sqrt}. (A
        // station family and a cluster family can never merge even if
        // their geometry coincided: the leaf kind is part of the key.)
        assert_eq!(cache.families(), 4);
        // The second round was served entirely from memoised prefixes.
        let built = cache.rects_built();
        for p in [&constant, &sqrt] {
            let _ = cache.usi_floorplan(p, &tech);
            let _ = cache.hybrid_floorplan(p, 16, &tech);
        }
        assert_eq!(cache.rects_built(), built, "no rebuild on repeat");
    }
}

impl Placement {
    /// Render the placement as a standalone SVG document (stations in
    /// blue, clusters in teal, channels in grey), scaled to `width_px`.
    pub fn svg(&self, width_px: u32) -> String {
        let bb = self.bounding();
        let scale = width_px as f64 / bb.w.max(1e-9);
        let h_px = (bb.h * scale).ceil().max(1.0);
        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" \
             height=\"{h_px:.0}\" viewBox=\"0 0 {width_px} {h_px:.0}\">\n"
        ));
        out.push_str(&format!(
            "  <rect x=\"0\" y=\"0\" width=\"{width_px}\" height=\"{h_px:.0}\" \
             fill=\"#ffffff\"/>\n"
        ));
        // Channels behind, leaves in front.
        let mut order: Vec<&(Component, Rect)> = self.rects.iter().collect();
        order.sort_by_key(|(c, _)| match c {
            Component::Channel(_) => 0,
            _ => 1,
        });
        for (c, r) in order {
            let (fill, label) = match c {
                Component::Station(i) => ("#4477aa", format!("S{i}")),
                Component::Cluster(i) => ("#44aa99", format!("C{i}")),
                Component::Channel(l) => ("#bbbbbb", format!("ch{l}")),
            };
            // SVG y grows downward; flip.
            let x = (r.x - bb.x) * scale;
            let y = (bb.y2() - r.y2()) * scale;
            let w = r.w * scale;
            let h = r.h * scale;
            out.push_str(&format!(
                "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" \
                 fill=\"{fill}\" stroke=\"#333333\" stroke-width=\"0.5\">\
                 <title>{label}</title></rect>\n"
            ));
        }
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod svg_tests {
    use super::*;
    use ultrascalar_memsys::Bandwidth;

    #[test]
    fn svg_contains_every_component() {
        let p = ArchParams {
            n: 16,
            l: 32,
            bits: 32,
            mem: Bandwidth::constant(1.0),
        };
        let f = usi_floorplan(&p, &Tech::cmos_035());
        let svg = f.svg(640);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        let rects = svg.matches("<rect").count();
        // Background + every placed component.
        assert_eq!(rects, 1 + f.rects.len());
        assert!(svg.contains("<title>S0</title>"));
        assert!(svg.contains("ch1"));
    }

    #[test]
    fn svg_is_well_nested() {
        let p = ArchParams {
            n: 4,
            l: 8,
            bits: 32,
            mem: Bandwidth::constant(1.0),
        };
        let f = usi_floorplan(&p, &Tech::cmos_035());
        let svg = f.svg(100);
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
        assert_eq!(
            svg.matches("<rect").count(),
            svg.matches("/rect>").count() + 1
        );
    }
}
