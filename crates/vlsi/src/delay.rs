//! Repeatered-wire delay: the physical premise behind the paper's wire
//! model.
//!
//! §3: "Wire delay can be made linear in wire length by inserting
//! repeater buffers at appropriate intervals \[Dally & Poulton\]. Thus
//! we use the terms wire delay and wire length interchangeably here."
//! This module derives that claim instead of assuming it: an unbuffered
//! wire is a distributed RC line with quadratic Elmore delay; splitting
//! it into `k` segments with repeaters makes the delay
//! `k·(t_buf + RC·(len/k)²/2)`, minimised at `k* = len·√(rc/(2·t_buf))`
//! — at which point delay grows *linearly* in length, which is exactly
//! the `wire_ps_per_um` constant the [`crate::tech::Tech`] models use.

/// Electrical parameters of a wire + repeater library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Wire resistance, Ω per µm.
    pub r_per_um: f64,
    /// Wire capacitance, fF per µm.
    pub c_per_um: f64,
    /// Intrinsic repeater delay, ps.
    pub buf_delay_ps: f64,
}

impl WireModel {
    /// Plausible mid-layer metal in a 0.35 µm process.
    pub fn cmos_035() -> Self {
        WireModel {
            r_per_um: 0.08,
            c_per_um: 0.2,
            buf_delay_ps: 60.0,
        }
    }

    /// Elmore delay (ps) of an *unbuffered* wire of `len` µm:
    /// `R·C·len²/2` (with R in Ω/µm, C in fF/µm → 10⁻³ ps units).
    pub fn unbuffered_ps(&self, len_um: f64) -> f64 {
        0.5 * self.r_per_um * self.c_per_um * len_um * len_um * 1e-3
    }

    /// Delay (ps) of a wire of `len` µm split into `k` repeated
    /// segments.
    pub fn segmented_ps(&self, len_um: f64, k: usize) -> f64 {
        assert!(k >= 1, "need at least one segment");
        let seg = len_um / k as f64;
        k as f64 * (self.buf_delay_ps + self.unbuffered_ps(seg))
    }

    /// The continuous-optimal repeater count for a wire of `len` µm.
    pub fn optimal_segments(&self, len_um: f64) -> usize {
        let rc = self.r_per_um * self.c_per_um * 1e-3;
        let k = len_um * (rc / (2.0 * self.buf_delay_ps)).sqrt();
        (k.round() as usize).max(1)
    }

    /// Delay (ps) with optimally spaced repeaters.
    pub fn repeated_ps(&self, len_um: f64) -> f64 {
        if len_um <= 0.0 {
            return 0.0;
        }
        self.segmented_ps(len_um, self.optimal_segments(len_um))
    }

    /// The asymptotic linear coefficient: ps per µm of an optimally
    /// repeated long wire, `√(2·RC·t_buf)` — what `Tech::wire_ps_per_um`
    /// abstracts.
    pub fn ps_per_um(&self) -> f64 {
        let rc = self.r_per_um * self.c_per_um * 1e-3;
        (2.0 * rc * self.buf_delay_ps).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_exponent_tail;

    #[test]
    fn unbuffered_delay_is_quadratic() {
        let w = WireModel::cmos_035();
        let pts: Vec<(f64, f64)> = (8..=16)
            .map(|k| {
                let len = (1u64 << k) as f64;
                (len, w.unbuffered_ps(len))
            })
            .collect();
        let f = fit_exponent_tail(&pts, 5);
        assert!((f.exponent - 2.0).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn repeated_delay_is_linear() {
        let w = WireModel::cmos_035();
        let pts: Vec<(f64, f64)> = (10..=20)
            .map(|k| {
                let len = (1u64 << k) as f64;
                (len, w.repeated_ps(len))
            })
            .collect();
        let f = fit_exponent_tail(&pts, 5);
        assert!((f.exponent - 1.0).abs() < 0.02, "{f:?}");
        // And the slope approaches the closed-form coefficient.
        let len = 1e6;
        let per_um = w.repeated_ps(len) / len;
        assert!(
            (per_um - w.ps_per_um()).abs() / w.ps_per_um() < 0.1,
            "{per_um} vs {}",
            w.ps_per_um()
        );
    }

    #[test]
    fn optimal_segmentation_beats_neighbours() {
        let w = WireModel::cmos_035();
        for len in [5e3, 5e4, 5e5] {
            let k = w.optimal_segments(len);
            let best = w.segmented_ps(len, k);
            if k > 1 {
                assert!(best <= w.segmented_ps(len, k - 1) * 1.0001, "len {len}");
            }
            assert!(best <= w.segmented_ps(len, k + 1) * 1.0001, "len {len}");
        }
    }

    #[test]
    fn repeaters_win_on_long_wires_only() {
        let w = WireModel::cmos_035();
        // A very short wire: one segment (no repeater gain).
        assert_eq!(w.optimal_segments(10.0), 1);
        // A cross-chip wire (7 cm, the paper's US-I side): repeaters cut
        // the delay by orders of magnitude.
        let len = 7e4;
        assert!(w.repeated_ps(len) < w.unbuffered_ps(len) / 10.0);
    }

    #[test]
    fn tech_constant_is_in_the_derived_range() {
        // The Tech model's abstract wire_ps_per_um should be the same
        // order as the derived coefficient.
        let derived = WireModel::cmos_035().ps_per_um();
        let tech = crate::tech::Tech::cmos_035().wire_ps_per_um;
        assert!(
            derived / tech < 10.0 && tech / derived < 10.0,
            "derived {derived} vs tech {tech}"
        );
    }

    #[test]
    fn zero_length_is_free() {
        assert_eq!(WireModel::cmos_035().repeated_ps(0.0), 0.0);
    }
}
