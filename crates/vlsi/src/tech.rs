//! Technology parameters.
//!
//! The paper's empirical layouts use "a 0.35 micrometer CMOS technology
//! with three layers of metal" built from a home-grown standard-cell
//! library; [`Tech::cmos_035`] is calibrated so that our Ultrascalar I
//! model reproduces the paper's measured 64-station datapath size
//! (7 cm × 7 cm with 32 × 32-bit registers — see
//! [`crate::empirical`]). The constants scale linearly with feature
//! size, so other nodes derive by scaling.

/// Physical constants of a process + standard-cell library.
///
/// Two wire pitches are distinguished, as in real methodology: H-tree
/// channel wires are *global* (repeatered, shielded, wide pitch — the
/// paper notes a 32-register tree edge carries over a thousand wires),
/// while the Ultrascalar II grid wires are *local* (short, minimum
/// pitch, routed over the cells — the paper's §7: "we used additional
/// metal layers to route the wires for the incoming registers over the
/// datapath instead, saving that area").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tech {
    /// Feature size in µm (for display).
    pub feature_um: f64,
    /// Global (repeatered channel) wire pitch, µm per track.
    pub global_pitch_um: f64,
    /// Local (over-cell grid) wire pitch, µm per track.
    pub local_pitch_um: f64,
    /// Side of a unit datapath cell (one mux/comparator bit), µm.
    pub cell_side_um: f64,
    /// Side of one register-file bit cell (with ready logic and
    /// datapath port), µm.
    pub regbit_side_um: f64,
    /// ALU area per bit, µm² (integer ALU, carry-lookahead class).
    pub alu_bit_area_um2: f64,
    /// Fixed per-station overhead area (decode + control), µm².
    pub station_overhead_um2: f64,
    /// Delay of one 2-input gate, ps.
    pub gate_delay_ps: f64,
    /// Delay of repeatered wire, ps per µm (the paper cites \[Dally &
    /// Poulton\] for linear-in-length repeatered wires).
    pub wire_ps_per_um: f64,
}

impl Tech {
    /// The calibrated 0.35 µm, 3-metal process of the paper's §7
    /// layouts.
    ///
    /// With 3 metal layers and academic cells, global routing is
    /// wasteful ("each node of our H-tree floorplan would require area
    /// comparable to the entire area of one of today's processors" for
    /// 64 × 64-bit registers). The constants below are calibrated once
    /// so the Ultrascalar I model reproduces the paper's measured
    /// 7 cm × 7 cm at n = 64, L = 32, b = 32 (see
    /// `empirical::figure12`); everything else is a model output.
    pub fn cmos_035() -> Self {
        Tech {
            feature_um: 0.35,
            global_pitch_um: 4.5,
            local_pitch_um: 1.2,
            cell_side_um: 18.0,
            regbit_side_um: 30.0,
            alu_bit_area_um2: 16_000.0,
            station_overhead_um2: 250_000.0,
            gate_delay_ps: 90.0,
            wire_ps_per_um: 0.12,
        }
    }

    /// A 0.1 µm projection (the paper's closing claim: "in a 0.1
    /// micrometer CMOS technology, a hybrid Ultrascalar with a
    /// window-size of 128 and 16 shared ALUs should fit easily within
    /// a chip 1 cm on a side"). Constants scale by feature ratio;
    /// delays improve accordingly.
    pub fn cmos_010() -> Self {
        let s = 0.10 / 0.35;
        let t = Tech::cmos_035();
        Tech {
            feature_um: 0.10,
            global_pitch_um: t.global_pitch_um * s,
            local_pitch_um: t.local_pitch_um * s,
            cell_side_um: t.cell_side_um * s,
            regbit_side_um: t.regbit_side_um * s,
            alu_bit_area_um2: t.alu_bit_area_um2 * s * s,
            station_overhead_um2: t.station_overhead_um2 * s * s,
            gate_delay_ps: t.gate_delay_ps * s,
            wire_ps_per_um: t.wire_ps_per_um, // repeatered wires scale weakly
        }
    }

    /// Side length (µm) of one execution station holding an integer
    /// ALU, an `l × bits` register file with ready bits, and decode
    /// (paper Figure 2).
    pub fn station_side_um(&self, l: usize, bits: usize) -> f64 {
        let alu = bits as f64 * self.alu_bit_area_um2;
        let regfile = (l as f64) * (bits as f64 + 1.0) * self.regbit_side_um.powi(2);
        (alu + regfile + self.station_overhead_um2).sqrt()
    }

    /// Total delay in ps for a path of `gates` gate levels and
    /// `wire_um` µm of repeatered wire.
    pub fn total_delay_ps(&self, gates: f64, wire_um: f64) -> f64 {
        gates * self.gate_delay_ps + wire_um * self.wire_ps_per_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_grows_with_l_and_bits() {
        let t = Tech::cmos_035();
        let s1 = t.station_side_um(8, 32);
        let s2 = t.station_side_um(32, 32);
        let s3 = t.station_side_um(32, 64);
        assert!(s1 < s2 && s2 < s3);
    }

    #[test]
    fn station_area_is_dominated_by_regfile_for_large_l() {
        let t = Tech::cmos_035();
        // Doubling L roughly doubles area (√2 on the side) once the
        // register file dominates.
        let s64 = t.station_side_um(64, 32);
        let s128 = t.station_side_um(128, 32);
        let ratio = (s128 / s64).powi(2);
        assert!(ratio > 1.6 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn scaled_node_is_smaller_and_faster() {
        let a = Tech::cmos_035();
        let b = Tech::cmos_010();
        assert!(b.global_pitch_um < a.global_pitch_um);
        assert!(b.local_pitch_um < a.local_pitch_um);
        assert!(b.gate_delay_ps < a.gate_delay_ps);
        assert!(b.station_side_um(32, 32) < a.station_side_um(32, 32));
    }

    #[test]
    fn total_delay_combines_terms() {
        let t = Tech::cmos_035();
        let d = t.total_delay_ps(10.0, 1000.0);
        assert!((d - (10.0 * 90.0 + 1000.0 * 0.12)).abs() < 1e-9);
    }
}
